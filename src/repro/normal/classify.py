"""Classification helpers for normal programs.

A *normal* program, in the paper's terminology, is an ordinary logic program:
every atom is ``p(t1, ..., tn)`` for a predicate symbol ``p`` and first-order
terms ``ti`` (or a propositional symbol ``p``).  HiLog programs generalize
this by allowing arbitrary terms — including variables — as predicate names.
"""

from __future__ import annotations

from typing import FrozenSet, NamedTuple, Set, Tuple

from repro.hilog.program import Program, Rule
from repro.hilog.terms import App, Sym, Term, Var


class PredicateSignature(NamedTuple):
    """A normal-program predicate: its symbol name and arity."""

    name: str
    arity: int

    def __repr__(self):
        return "%s/%d" % (self.name, self.arity)


def atom_signature(atom):
    """The :class:`PredicateSignature` of a normal atom (or ``None``)."""
    if isinstance(atom, App):
        if isinstance(atom.name, Sym):
            return PredicateSignature(atom.name.name, len(atom.args))
        return None
    if isinstance(atom, Sym):
        return PredicateSignature(atom.name, 0)
    return None


def is_normal_atom(atom):
    """True when the atom's predicate name is a plain symbol."""
    return atom_signature(atom) is not None


def is_normal_program(program):
    """True when every atom of the program is a normal atom.

    Delegates to :meth:`repro.hilog.program.Program.is_normal`, provided here
    for symmetry with the other classification predicates.
    """
    return program.is_normal()


def predicate_signatures(program):
    """All predicate signatures used in heads or bodies of the program."""
    signatures = set()
    for rule in program.rules:
        atoms = [rule.head] + [lit.atom for lit in rule.body if not lit.is_builtin()]
        for aggregate in rule.aggregates:
            atoms.append(aggregate.condition)
        for atom in atoms:
            signature = atom_signature(atom)
            if signature is not None:
                signatures.add(signature)
    return signatures


def head_signatures(program):
    """Signatures of predicates defined (appearing in a head) by the program."""
    signatures = set()
    for rule in program.rules:
        signature = atom_signature(rule.head)
        if signature is not None:
            signatures.add(signature)
    return signatures


def edb_predicates(program):
    """Predicates defined only by facts ("extensional database").

    The paper notes (Section 6.1) that with variables in predicate names it
    may be unclear which predicates are EDB; for normal programs the split is
    syntactic and implemented here.
    """
    defined_by_rule = set()
    defined_by_fact = set()
    for rule in program.rules:
        signature = atom_signature(rule.head)
        if signature is None:
            continue
        if rule.is_fact():
            defined_by_fact.add(signature)
        else:
            defined_by_rule.add(signature)
    return defined_by_fact - defined_by_rule


def idb_predicates(program):
    """Predicates defined by at least one rule with a nonempty body."""
    result = set()
    for rule in program.rules:
        if rule.is_fact():
            continue
        signature = atom_signature(rule.head)
        if signature is not None:
            result.add(signature)
    return result
