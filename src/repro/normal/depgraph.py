"""Dependency graphs and strongly connected components.

Modular stratification (paper, Section 6) is defined in terms of the
strongly connected components of the predicate dependency graph: ``P_i ⊏
P_j`` when ``P_j`` contains a rule whose body mentions a predicate defined
in ``P_i``.  This module provides:

* a generic iterative Tarjan SCC implementation (no recursion limits),
* construction of predicate dependency graphs for normal programs (nodes are
  :class:`repro.normal.classify.PredicateSignature`) and of ground-name
  dependency graphs for HiLog programs (nodes are ground predicate-name
  terms, used by the Figure-1 procedure),
* topological ordering of the component condensation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, NamedTuple, Sequence, Set, Tuple

from repro.hilog.program import Program, Rule
from repro.hilog.terms import Term
from repro.normal.classify import atom_signature


class DependencyGraph:
    """A directed graph with positively/negatively labelled edges."""

    def __init__(self):
        self._nodes = set()
        self._edges = {}
        self._negative_edges = set()

    def add_node(self, node):
        self._nodes.add(node)
        self._edges.setdefault(node, set())

    def add_edge(self, source, target, negative=False):
        self.add_node(source)
        self.add_node(target)
        self._edges[source].add(target)
        if negative:
            self._negative_edges.add((source, target))

    @property
    def nodes(self):
        return frozenset(self._nodes)

    def successors(self, node):
        return frozenset(self._edges.get(node, ()))

    def edges(self):
        for source, targets in self._edges.items():
            for target in targets:
                yield source, target

    def is_negative_edge(self, source, target):
        return (source, target) in self._negative_edges

    def strongly_connected_components(self):
        """The SCCs of the graph (as frozensets), in reverse topological
        order: a component is listed before any component that depends on it."""
        return strongly_connected_components(self._nodes, self.successors)

    def condensation(self):
        """Return (components, component_of, component_edges).

        ``components`` is the SCC list from
        :meth:`strongly_connected_components`, ``component_of`` maps a node
        to its component index and ``component_edges`` maps a component index
        to the set of component indices it depends on (its successors).
        """
        components = self.strongly_connected_components()
        component_of = {}
        for index, component in enumerate(components):
            for node in component:
                component_of[node] = index
        component_edges = {index: set() for index in range(len(components))}
        for source, target in self.edges():
            source_component = component_of[source]
            target_component = component_of[target]
            if source_component != target_component:
                component_edges[source_component].add(target_component)
        return components, component_of, component_edges


def strongly_connected_components(nodes, successors):
    """Iterative Tarjan's algorithm.

    ``successors`` is a callable from node to an iterable of successor nodes.
    Returns a list of frozensets in reverse topological order (every
    component appears after... i.e. before any component that can reach it is
    emitted after it), which is the order Tarjan naturally produces: each SCC
    is emitted only after all SCCs it can reach.
    """
    nodes = list(nodes)
    index_counter = [0]
    indices = {}
    lowlinks = {}
    on_stack = set()
    stack = []
    components = []

    for start in nodes:
        if start in indices:
            continue
        work = [(start, iter(list(successors(start))))]
        indices[start] = lowlinks[start] = index_counter[0]
        index_counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in indices:
                    indices[child] = lowlinks[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(list(successors(child)))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return components


def condensation_order(graph):
    """Component indices of ``graph`` in dependency order (lowest first)."""
    components, _component_of, component_edges = graph.condensation()
    # Kahn's algorithm over the condensation, emitting components whose
    # dependencies have all been emitted.
    emitted = []
    remaining = set(range(len(components)))
    satisfied = set()
    while remaining:
        progress = False
        for index in sorted(remaining):
            if component_edges[index] <= satisfied:
                emitted.append(index)
                satisfied.add(index)
                remaining.discard(index)
                progress = True
                break
        if not progress:
            raise AssertionError("condensation of an SCC graph must be acyclic")
    return [components[index] for index in emitted]


def predicate_dependency_graph(program):
    """The predicate dependency graph of a normal program.

    Nodes are predicate signatures; there is an edge from the head's
    predicate to each body literal's predicate, labelled negative when the
    body literal is negative.  Aggregate conditions count as positive
    dependencies (the paper treats aggregation like negation for
    stratification purposes, which callers can enforce by passing
    ``aggregates_negative=True``).
    """
    return _predicate_dependency_graph(program, aggregates_negative=False)


def _predicate_dependency_graph(program, aggregates_negative):
    graph = DependencyGraph()
    for rule in program.rules:
        head_signature = atom_signature(rule.head)
        if head_signature is None:
            raise ValueError("not a normal program: head %r" % (rule.head,))
        graph.add_node(head_signature)
        for literal in rule.body:
            if literal.is_builtin():
                continue
            body_signature = atom_signature(literal.atom)
            if body_signature is None:
                raise ValueError("not a normal program: body atom %r" % (literal.atom,))
            graph.add_edge(head_signature, body_signature, negative=literal.negative)
        for aggregate in rule.aggregates:
            condition_signature = atom_signature(aggregate.condition)
            if condition_signature is None:
                raise ValueError(
                    "not a normal program: aggregate condition %r" % (aggregate.condition,)
                )
            graph.add_edge(head_signature, condition_signature, negative=aggregates_negative)
    return graph
