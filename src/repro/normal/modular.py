"""Modular stratification for normal programs (Definitions 6.3 and 6.4).

Ross'90 modular stratification is defined component-by-component over the
predicate dependency graph: a program is modularly stratified when, for every
strongly connected component ``F``, the union of the lower components has a
total well-founded model ``M`` and the *reduction of F modulo M* — instantiate
``F``, delete rule instances with a false settled subgoal, then delete the
(true) settled subgoals — is locally stratified.

The win/move game of Example 6.1 is the canonical member of this class: not
even locally stratified in general, but modularly stratified whenever the
``move`` relation is acyclic.

This module both *decides* modular stratification and *computes* the total
well-founded model along the way (Theorem 6.1 specialized to normal
programs), because the decision procedure constructs exactly that model.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.engine.builtins import solve_builtin
from repro.engine.grounding import GroundProgram, GroundRule
from repro.engine.interpretation import Interpretation
from repro.engine.wellfounded import well_founded_model
from repro.hilog.errors import EvaluationError, StratificationError
from repro.hilog.herbrand import normal_herbrand_universe
from repro.hilog.program import Literal, Program, Rule
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Sym, Term, Var
from repro.hilog.unify import match
from repro.normal.classify import atom_signature
from repro.normal.depgraph import condensation_order, predicate_dependency_graph
from repro.normal.stratification import is_locally_stratified_ground


class ModularStratificationResult(NamedTuple):
    """Outcome of the modular stratification test.

    Attributes:
        is_modularly_stratified: the verdict.
        model: the total well-founded model (an :class:`Interpretation`)
            when the verdict is positive, else ``None``.
        failing_component: the predicate component that failed, when any.
        reason: human-readable explanation of a failure.
        component_order: the dependency-ordered component list that was used.
    """

    is_modularly_stratified: bool
    model: Optional[Interpretation]
    failing_component: Optional[FrozenSet]
    reason: str
    component_order: Tuple[FrozenSet, ...]


def _signature_of(atom):
    signature = atom_signature(atom)
    if signature is None:
        raise ValueError("not a normal atom: %r" % (atom,))
    return signature


def _instantiate_component_rule(rule, settled_signatures, settled_true, constants):
    """Ground instances of ``rule`` for the reduction modulo the settled model.

    Positive body literals over settled predicates are matched against the
    settled true atoms (which simultaneously discards instances with a false
    settled subgoal); any variables still unbound afterwards are instantiated
    over the program's constants.  Yields pairs ``(ground_rule, kept_body)``
    where ``kept_body`` contains only the subgoals over *unsettled*
    predicates, i.e. the reduced rule of Definition 6.3.
    """
    settled_atoms_by_signature = {}
    for atom in settled_true:
        settled_atoms_by_signature.setdefault(_signature_of(atom), []).append(atom)

    def expand(position, subst):
        if position == len(rule.body):
            yield subst
            return
        literal = rule.body[position]
        if literal.is_builtin():
            # Builtins may still contain unbound variables here; defer them to
            # the final check after constant instantiation.
            yield from expand(position + 1, subst)
            return
        signature = _signature_of(literal.atom)
        if literal.positive and signature in settled_signatures:
            pattern = subst.apply(literal.atom)
            for atom in settled_atoms_by_signature.get(signature, ()):  # semi-join
                extended = match(pattern, atom, subst)
                if extended is not None:
                    yield from expand(position + 1, extended)
            return
        yield from expand(position + 1, subst)

    for partial in expand(0, Substitution()):
        remaining = sorted(
            {v for v in rule.variables() if isinstance(partial.apply(v), Var)},
            key=lambda v: v.name,
        )
        assignments = [Substitution()]
        if remaining:
            assignments = (
                Substitution(dict(zip(remaining, combo)))
                for combo in product(constants, repeat=len(remaining))
            )
        for assignment in assignments:
            subst = partial.compose(assignment)
            ok = True
            for literal in rule.body:
                if not literal.is_builtin():
                    continue
                try:
                    if not solve_builtin(literal.atom, subst):
                        ok = False
                        break
                except EvaluationError:
                    ok = False
                    break
            if not ok:
                continue
            head = subst.apply(rule.head)
            kept_positive = []
            kept_negative = []
            satisfied = True
            for literal in rule.body:
                if literal.is_builtin():
                    continue
                atom = subst.apply(literal.atom)
                signature = _signature_of(literal.atom)
                if signature in settled_signatures:
                    truth = atom in settled_true
                    if literal.positive and not truth:
                        satisfied = False
                        break
                    if literal.negative and truth:
                        satisfied = False
                        break
                    # Settled and satisfied: delete the subgoal (Definition 6.3).
                    continue
                if literal.positive:
                    kept_positive.append(atom)
                else:
                    kept_negative.append(atom)
            if not satisfied:
                continue
            yield GroundRule(head, tuple(kept_positive), tuple(kept_negative))


def reduce_component(component_rules, settled_signatures, settled_true, constants):
    """The reduction of a component modulo the settled model (Definition 6.3),
    as a :class:`GroundProgram`."""
    reduced = []
    seen = set()
    for rule in component_rules:
        for ground_rule in _instantiate_component_rule(
            rule, settled_signatures, settled_true, constants
        ):
            if ground_rule not in seen:
                seen.add(ground_rule)
                reduced.append(ground_rule)
    return GroundProgram(reduced)


def modular_stratification(program, constants=None):
    """Decide modular stratification of a normal program and build its model.

    Returns a :class:`ModularStratificationResult`.  ``constants`` defaults
    to the program's normal Herbrand universe (its constants).
    """
    if program.has_aggregates():
        raise StratificationError(
            "normal modular stratification does not handle aggregates; "
            "use repro.core.modular for the HiLog/aggregate extension"
        )
    if not program.is_normal():
        raise StratificationError(
            "modular_stratification expects a normal program; "
            "use repro.core.modular.modularly_stratified_for_hilog for HiLog programs"
        )
    if constants is None:
        constants = normal_herbrand_universe(program)
    constants = list(constants)

    graph = predicate_dependency_graph(program)
    components = tuple(condensation_order(graph))

    settled_signatures = set()
    settled_true = set()
    base = set()

    for component in components:
        component_rules = [
            rule for rule in program.rules if _signature_of(rule.head) in component
        ]
        reduction = reduce_component(component_rules, settled_signatures, settled_true, constants)
        base |= set(reduction.base)
        if not is_locally_stratified_ground(reduction):
            return ModularStratificationResult(
                False,
                None,
                component,
                "the reduction of component %s modulo the lower components is not "
                "locally stratified" % sorted(map(repr, component)),
                components,
            )
        component_model = well_founded_model(reduction)
        if not component_model.is_total():
            # Cannot happen for locally stratified reductions; kept as a guard.
            return ModularStratificationResult(
                False,
                None,
                component,
                "the reduction of component %s has no total well-founded model"
                % sorted(map(repr, component)),
                components,
            )
        settled_true |= set(component_model.true)
        settled_signatures |= set(component)

    model = Interpretation(settled_true, base - settled_true, base=base)
    return ModularStratificationResult(True, model, None, "", components)


def is_modularly_stratified(program, constants=None):
    """Definition 6.4 as a boolean test."""
    return modular_stratification(program, constants=constants).is_modularly_stratified


def perfect_model(program, constants=None):
    """The total well-founded model of a modularly stratified normal program.

    Raises :class:`StratificationError` when the program is not modularly
    stratified.
    """
    result = modular_stratification(program, constants=constants)
    if not result.is_modularly_stratified:
        raise StratificationError(result.reason or "program is not modularly stratified")
    return result.model
