"""Stratification and local stratification (Definitions 6.1 and 6.2).

* A normal program is **stratified** when predicate names can be assigned
  ordinal levels such that in every rule the head's level is strictly greater
  than the level of every negatively occurring predicate and at least as
  great as the level of every positively occurring predicate.

* A normal program is **locally stratified** when the same holds for ground
  atoms over the Herbrand instantiation.  For the finite ground programs this
  reproduction works with, local stratification is equivalent to the ground
  atom dependency graph having no cycle that contains a negative edge, which
  is what :func:`is_locally_stratified_ground` checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.engine.grounding import GroundProgram, GroundRule
from repro.hilog.program import Program
from repro.normal.classify import atom_signature
from repro.normal.depgraph import (
    DependencyGraph,
    predicate_dependency_graph,
    strongly_connected_components,
)


def stratification_levels(program):
    """Assign predicate levels witnessing stratification, or return ``None``.

    Levels are computed on the condensation of the predicate dependency
    graph: a component's level is the maximum over its dependencies of
    (dependency level + 1 for negative edges, dependency level for positive
    edges); if a negative edge stays *inside* a component the program is not
    stratified.
    """
    graph = predicate_dependency_graph(program)
    components, component_of, component_edges = graph.condensation()

    # A negative edge within a single SCC defeats stratification.
    for source, target in graph.edges():
        if graph.is_negative_edge(source, target) and component_of[source] == component_of[target]:
            return None

    levels = {}

    def component_level(index):
        if index in levels:
            return levels[index]
        level = 0
        for source in components[index]:
            for target in graph.successors(source):
                target_component = component_of[target]
                if target_component == index:
                    continue
                dependency_level = component_level(target_component)
                if graph.is_negative_edge(source, target):
                    level = max(level, dependency_level + 1)
                else:
                    level = max(level, dependency_level)
        levels[index] = level
        return level

    result = {}
    for index in range(len(components)):
        level = component_level(index)
        for node in components[index]:
            result[node] = level
    return result


def is_stratified(program):
    """Definition 6.1: does a level assignment on predicate names exist?"""
    return stratification_levels(program) is not None


def ground_dependency_graph(ground_program):
    """The atom dependency graph of a ground program (edges head -> body atom)."""
    graph = DependencyGraph()
    for rule in ground_program.rules:
        graph.add_node(rule.head)
        for atom in rule.positive:
            graph.add_edge(rule.head, atom, negative=False)
        for atom in rule.negative:
            graph.add_edge(rule.head, atom, negative=True)
    for atom in ground_program.base:
        graph.add_node(atom)
    return graph


def is_locally_stratified_ground(ground_program):
    """Definition 6.2 on a finite ground program: no cycle through negation.

    Equivalent to: within every strongly connected component of the ground
    atom dependency graph there is no negative edge.
    """
    graph = ground_dependency_graph(ground_program)
    components = graph.strongly_connected_components()
    component_of = {}
    for index, component in enumerate(components):
        for node in component:
            component_of[node] = index
    for source, target in graph.edges():
        if graph.is_negative_edge(source, target) and component_of[source] == component_of[target]:
            return False
    return True


def local_stratification_levels(ground_program):
    """Ground-atom levels witnessing local stratification, or ``None``.

    Provided mainly for the tests of Example 6.1: the win/move program over
    an acyclic move graph is locally stratified only "per game position"."""
    if not is_locally_stratified_ground(ground_program):
        return None
    graph = ground_dependency_graph(ground_program)
    components, component_of, component_edges = graph.condensation()

    levels = {}

    def component_level(index):
        if index in levels:
            return levels[index]
        level = 0
        for source in components[index]:
            for target in graph.successors(source):
                target_component = component_of[target]
                if target_component == index:
                    continue
                dependency_level = component_level(target_component)
                if graph.is_negative_edge(source, target):
                    level = max(level, dependency_level + 1)
                else:
                    level = max(level, dependency_level)
        levels[index] = level
        return level

    result = {}
    for index in range(len(components)):
        level = component_level(index)
        for atom in components[index]:
            result[atom] = level
    return result
