"""Normal logic program substrate.

The paper constantly compares HiLog notions with their classical
counterparts on *normal* programs (programs whose predicate names are plain
symbols).  This package implements those classical notions exactly as the
paper states them:

* range restriction (Definition 4.1),
* the predicate dependency graph and its strongly connected components,
* stratification (Definition 6.1) and local stratification (Definition 6.2),
* modular stratification in the sense of Ross'90 (Definitions 6.3/6.4) with
  the accompanying perfect-model computation,
* classification helpers (is the program normal, EDB/IDB split, predicate
  signatures).
"""

from repro.normal.classify import (
    PredicateSignature,
    edb_predicates,
    idb_predicates,
    is_normal_program,
    predicate_signatures,
)
from repro.normal.range_restriction import is_range_restricted_normal, unrestricted_rules
from repro.normal.depgraph import (
    DependencyGraph,
    condensation_order,
    predicate_dependency_graph,
    strongly_connected_components,
)
from repro.normal.stratification import (
    is_locally_stratified_ground,
    is_stratified,
    stratification_levels,
)
from repro.normal.modular import (
    ModularStratificationResult,
    is_modularly_stratified,
    modular_stratification,
    reduce_component,
)

__all__ = [
    "PredicateSignature",
    "is_normal_program",
    "predicate_signatures",
    "edb_predicates",
    "idb_predicates",
    "is_range_restricted_normal",
    "unrestricted_rules",
    "DependencyGraph",
    "predicate_dependency_graph",
    "strongly_connected_components",
    "condensation_order",
    "is_stratified",
    "stratification_levels",
    "is_locally_stratified_ground",
    "ModularStratificationResult",
    "modular_stratification",
    "is_modularly_stratified",
    "reduce_component",
]
