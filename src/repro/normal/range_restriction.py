"""Range restriction for normal programs (Definition 4.1).

A normal program is range restricted when, in every rule, every variable
occurring in the head or in a negative body literal also occurs in a
positive body literal.  Range-restricted normal programs are domain
independent, and Theorems 4.1/4.2 of the paper show that for them the HiLog
well-founded/stable semantics conservatively extend the normal ones.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hilog.program import Program, Rule


def rule_is_range_restricted_normal(rule):
    """Definition 4.1 applied to a single rule.

    Variables introduced by builtins on their left-hand side (``N is E`` /
    ``N = E``) are treated as bound, mirroring the usual safety condition for
    arithmetic in Datalog systems; the paper's function-free examples are
    unaffected by this allowance.
    """
    bound = set()
    for literal in rule.body:
        if literal.positive and not literal.is_builtin():
            bound |= literal.atom.variables()
    changed = True
    while changed:
        changed = False
        for literal in rule.builtin_literals():
            variables = literal.atom.variables()
            unbound = variables - bound
            if not unbound:
                continue
            # An assignment-style builtin binds its left-hand side once the
            # right-hand side is bound.
            from repro.hilog.terms import App, Sym, Var

            atom = literal.atom
            if (
                isinstance(atom, App)
                and isinstance(atom.name, Sym)
                and atom.name.name in ("is", "=")
                and len(atom.args) == 2
                and isinstance(atom.args[0], Var)
                and atom.args[1].variables() <= bound
            ):
                if atom.args[0] not in bound:
                    bound.add(atom.args[0])
                    changed = True
    for aggregate in rule.aggregates:
        # The aggregate's result variable is bound by the aggregate itself;
        # its condition variables are bound by matching the condition.
        bound |= aggregate.condition.variables()
        bound |= aggregate.result.variables()

    head_variables = rule.head.variables()
    if not head_variables <= bound:
        return False
    for literal in rule.negative_literals():
        if not literal.atom.variables() <= bound:
            return False
    return True


def is_range_restricted_normal(program):
    """Definition 4.1: every rule of the program is range restricted."""
    return all(rule_is_range_restricted_normal(rule) for rule in program.rules)


def unrestricted_rules(program):
    """The rules violating Definition 4.1 (useful for error reporting)."""
    return tuple(
        rule for rule in program.rules if not rule_is_range_restricted_normal(rule)
    )
