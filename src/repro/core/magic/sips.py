"""Sideways information passing (SIPS) for the magic-sets rewriting.

The paper's method assumes rule bodies are ordered so that evaluation can
proceed left to right without floundering (footnote 10): a negative subgoal,
or a subgoal with a variable in its predicate name, must not be reached
before the variables it needs are bound.  This module computes, for a rule
and a set of head variables bound by the call:

* the variables bound before each body subgoal is reached,
* the variables that must be carried by each supplementary predicate
  ``sup_{r,i}`` (those bound so far that are still needed later),
* whether the rule flounders under that binding pattern.
"""

from __future__ import annotations

from typing import FrozenSet, List, NamedTuple, Sequence, Set, Tuple

from repro.hilog.program import Literal, Rule
from repro.hilog.terms import App, Sym, Term, Var, atom_arguments, predicate_name


class SipsStep(NamedTuple):
    """Binding information at one body position of a rule."""

    index: int
    literal: Literal
    bound_before: FrozenSet[Var]
    bound_after: FrozenSet[Var]
    supplementary_variables: Tuple[Var, ...]
    flounders: bool


def _bound_by(literal, currently_bound):
    """Variables bound after evaluating ``literal`` with ``currently_bound``."""
    if literal.is_builtin():
        atom = literal.atom
        if (
            isinstance(atom, App)
            and isinstance(atom.name, Sym)
            and atom.name.name in ("is", "=")
            and len(atom.args) == 2
            and isinstance(atom.args[0], Var)
            and atom.args[1].variables() <= currently_bound
        ):
            return currently_bound | {atom.args[0]}
        return set(currently_bound)
    if literal.negative:
        return set(currently_bound)
    return set(currently_bound) | literal.atom.variables()


def _needed_later(rule, position):
    """Variables needed at or after body position ``position`` or in the head."""
    needed = set(rule.head.variables())
    for literal in rule.body[position:]:
        needed |= literal.variables()
    for aggregate in rule.aggregates:
        needed |= aggregate.variables()
    return needed


def _flounders(literal, bound_before):
    """A subgoal flounders when it is negative and not ground at call time, or
    when its predicate name is still entirely unbound (footnote 10)."""
    if literal.is_builtin():
        return False
    if literal.negative:
        return not literal.atom.variables() <= bound_before
    name_vars = predicate_name(literal.atom).variables()
    if name_vars and not (name_vars <= bound_before or atom_arguments(literal.atom)):
        # A subgoal whose name is an unbound bare variable with no arguments
        # to constrain it cannot be scheduled.
        return True
    return False


def left_to_right_sips(rule, bound_head_variables):
    """Compute the left-to-right SIPS of ``rule`` given bound head variables.

    Returns a list of :class:`SipsStep`, one per body literal (builtins
    included), in textual order.
    """
    bound = set(bound_head_variables) & rule.head.variables()
    steps = []
    for index, literal in enumerate(rule.body):
        needed = _needed_later(rule, index)
        supplementary = tuple(sorted(bound & needed, key=lambda v: v.name))
        flounders = _flounders(literal, bound)
        bound_after = _bound_by(literal, bound)
        steps.append(
            SipsStep(
                index=index,
                literal=literal,
                bound_before=frozenset(bound),
                bound_after=frozenset(bound_after),
                supplementary_variables=supplementary,
                flounders=flounders,
            )
        )
        bound = bound_after
    return steps


def final_supplementary_variables(rule, bound_head_variables):
    """Variables carried by the last supplementary predicate ``sup_{r,n}``:
    the bound variables that the head still needs."""
    steps = left_to_right_sips(rule, bound_head_variables)
    bound = set(bound_head_variables) & rule.head.variables()
    if steps:
        bound = set(steps[-1].bound_after)
    head_needed = rule.head.variables()
    return tuple(sorted(bound & head_needed, key=lambda v: v.name))
