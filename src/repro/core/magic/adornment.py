"""Binding patterns (adornments) for HiLog calls.

Classical magic sets adorn each predicate with a string of ``b``/``f`` marks.
The paper's HiLog version instead passes the *called atom itself* as the
argument of the ``magic`` predicate (``magic(w(m)(a), +)``), and notes that
"variables in names and variables in arguments are treated the same" for the
supplementary predicates.  We follow the same style: a call pattern is the
called atom with every unbound variable replaced by the reserved symbol
``$free``.  This keeps call patterns ground (so the ordinary engine can store
them) while preserving exactly the information an adornment would carry.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.hilog.terms import App, Sym, Term, Var

#: Reserved symbol marking an unbound position in an abstracted call pattern.
FREE = Sym("$free")


def abstract_call(atom, bound_variables=frozenset()):
    """Replace every variable of ``atom`` not in ``bound_variables`` by ``$free``.

    Variables in ``bound_variables`` are left in place (they will be
    substituted by the supplementary predicate's bindings when the magic rule
    fires); all other variables become ``$free``.
    """
    bound = set(bound_variables)

    def walk(term):
        if isinstance(term, Var):
            return term if term in bound else FREE
        if isinstance(term, App):
            return App(walk(term.name), tuple(walk(argument) for argument in term.args))
        return term

    return walk(atom)


#: Reserved symbol marking a bound-but-unknown position in a call signature
#: (used when a call pattern is processed recursively: the rewriting only
#: needs to know *which* positions will be bound, not their values).
BOUND = Sym("$bound")


def adornment_of(atom):
    """The classical ``b``/``f`` adornment string of an (abstracted) call.

    Argument positions containing ``$free`` are free, everything else —
    constants, ``$bound`` markers and the variables left in place for bound
    positions by :func:`abstract_call` — is bound; the predicate name
    contributes a leading ``b`` or ``f``.  Useful for reporting and for the
    tests that compare against Example 6.6.
    """
    from repro.hilog.terms import atom_arguments, predicate_name

    def is_free(term):
        if term == FREE:
            return True
        if isinstance(term, App):
            return is_free(term.name) or any(is_free(argument) for argument in term.args)
        return False

    marks = ["f" if is_free(predicate_name(atom)) else "b"]
    for argument in atom_arguments(atom):
        marks.append("f" if is_free(argument) else "b")
    return "".join(marks)


def call_signature(atom, bound_variables=frozenset()):
    """Abstract a call for recursive processing: bound variables become
    ``$bound`` markers and unbound variables become ``$free`` markers, so two
    calls with the same binding *pattern* get the same signature regardless of
    the actual values passed."""
    bound = set(bound_variables)

    def walk(term):
        if isinstance(term, Var):
            return BOUND if term in bound else FREE
        if isinstance(term, App):
            return App(walk(term.name), tuple(walk(argument) for argument in term.args))
        return term

    return walk(atom)


def generalize_pattern(atom):
    """Canonical variant of a call pattern: variables renamed V0, V1, ... in
    left-to-right order.  Two calls are the same pattern exactly when their
    canonical variants are equal."""
    mapping = {}

    def walk(term):
        if isinstance(term, Var):
            if term not in mapping:
                mapping[term] = Var("V%d" % len(mapping))
            return mapping[term]
        if isinstance(term, App):
            return App(walk(term.name), tuple(walk(argument) for argument in term.args))
        return term

    return walk(atom)
