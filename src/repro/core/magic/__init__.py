"""Magic sets for modularly stratified HiLog programs (Section 6.1).

The paper extends the magic-sets transformation of Ross'90 to strongly
range-restricted HiLog programs that are modularly stratified *from left to
right*: queries may bind predicate names partially (``?- w(m)(a)``) or not
at all, and the rewriting introduces a ``magic`` predicate whose argument is
the called atom together with supplementary predicates ``sup_{r,i}`` holding
the bindings passed across each rule body.

This package provides:

* :func:`repro.core.magic.rewrite.magic_rewrite` — the declarative rewriting:
  seed fact, supplementary rules, magic rules and answer rules in the style
  of Example 6.6 (with unbound argument positions abstracted by the reserved
  symbol ``$free``, the adornment information of the classical method).
* :func:`repro.core.magic.evaluate.magic_evaluate` — query-driven evaluation:
  call patterns are propagated left-to-right (the magic-templates view of the
  same transformation), only rule instances relevant to the query are
  instantiated, and the well-founded model of that relevant fragment is
  computed.  For programs that are modularly stratified from left to right
  this returns exactly the answers of the full well-founded semantics while
  materializing only query-reachable atoms; the ``dp``/``dn``/``dn'``
  book-keeping relations of Ross'90 are replaced by this
  relevant-subprogram construction (the two coincide on the supported class,
  and the substitution is recorded in DESIGN.md).
"""

from repro.core.magic.adornment import abstract_call, adornment_of, FREE
from repro.core.magic.sips import left_to_right_sips, SipsStep
from repro.core.magic.rewrite import MagicProgram, magic_rewrite
from repro.core.magic.evaluate import (
    MagicEvaluationResult,
    answer_from_store,
    answer_query,
    magic_evaluate,
)

__all__ = [
    "FREE",
    "abstract_call",
    "adornment_of",
    "SipsStep",
    "left_to_right_sips",
    "MagicProgram",
    "magic_rewrite",
    "MagicEvaluationResult",
    "answer_from_store",
    "magic_evaluate",
    "answer_query",
]
