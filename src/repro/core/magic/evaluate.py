"""Query-driven evaluation of modularly stratified HiLog programs.

This is the operational counterpart of the magic-sets rewriting: call
patterns are propagated from the query through rule bodies left to right
(the same sideways information passing the rewriting uses), only rule
instances whose head answers some propagated call are instantiated, and the
well-founded model of that *relevant* ground fragment is computed.  For
programs that are modularly stratified from left to right this yields
exactly the answers of the full HiLog well-founded semantics while touching
only query-reachable atoms — the efficiency claim of Section 6.1.

Relation to the paper's formulation: Ross'90 (and Example 6.6) track the
completion of negatively called subgoals with the auxiliary relations
``dp``/``dn``/``dn'`` and a boxed-negation rule evaluated "in a particular
order".  Here the same effect is obtained by collecting the downward closure
of the query through both positive and negative subgoals and running the
ground well-founded computation on that closure: the truth value of an atom
under the well-founded semantics only depends on atoms reachable from it
through rule bodies, so the two strategies agree on the supported class.
The substitution is recorded in DESIGN.md.

Floundering (footnote 10) — a negative subgoal, or a subgoal whose predicate
name is an unbound bare variable, reached before its variables are bound —
is detected and reported as an error.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.core.magic.adornment import generalize_pattern
from repro.engine.builtins import solve_builtin
from repro.engine.grounding import GroundProgram, GroundRule
from repro.engine.interpretation import Interpretation
from repro.engine.wellfounded import well_founded_model
from repro.hilog.errors import EvaluationError, GroundingError
from repro.hilog.program import Literal, Program, Rule
from repro.hilog.subst import Substitution
from repro.hilog.terms import Term, Var, outermost_symbol, predicate_name
from repro.hilog.unify import match, unify


class MagicEvaluationResult(NamedTuple):
    """Outcome of a query-driven evaluation."""

    answers: Tuple[Term, ...]
    interpretation: Interpretation
    relevant_atoms: FrozenSet[Term]
    call_patterns: Tuple[Term, ...]
    ground_rules: int


class _CallTable:
    """Deduplicated store of call patterns (up to variable renaming)."""

    def __init__(self):
        self._patterns = {}

    def add(self, pattern):
        key = generalize_pattern(pattern)
        if key in self._patterns:
            return False
        self._patterns[key] = pattern
        return True

    def patterns(self):
        return list(self._patterns.values())

    def __len__(self):
        return len(self._patterns)


def _rename_rule(rule, counter):
    counter[0] += 1
    return rule.rename_apart([counter[0] * 1000])


def _process_rule(rule, call_pattern, answers_index, all_answers, calls, new_calls,
                  flounder_errors):
    """Instantiate ``rule`` for ``call_pattern`` against the current answers.

    Returns the set of ground rules generated.  New call patterns discovered
    along the way are pushed into ``new_calls``.
    """
    produced = set()
    head_unifier = unify(rule.head, call_pattern)
    if head_unifier is None:
        return produced

    def expand(position, subst):
        if position == len(rule.body):
            yield subst
            return
        literal = rule.body[position]
        if literal.is_builtin():
            try:
                solutions = solve_builtin(literal.atom, subst)
            except EvaluationError:
                # Defer the builtin until later literals bind its variables.
                for later in expand(position + 1, subst):
                    try:
                        for solution in solve_builtin(literal.atom, later):
                            yield solution
                    except EvaluationError:
                        flounder_errors.append(
                            "builtin %r never becomes evaluable in rule %r"
                            % (literal.atom, rule)
                        )
                return
            for solution in solutions:
                yield from expand(position + 1, solution)
            return

        atom = subst.apply(literal.atom)
        name = predicate_name(atom)
        if literal.negative:
            if not atom.is_ground():
                flounder_errors.append(
                    "negative subgoal %r reached with unbound variables in rule %r "
                    "(the program flounders)" % (atom, rule)
                )
                return
            # Propagate relevance through the negation, but do not filter: the
            # final well-founded computation decides the truth value.
            if calls.add(atom):
                new_calls.append(atom)
            yield from expand(position + 1, subst)
            return

        if isinstance(name, Var):
            flounder_errors.append(
                "subgoal %r has an unbound predicate name in rule %r "
                "(the program flounders)" % (atom, rule)
            )
            return
        if calls.add(atom):
            new_calls.append(atom)
        if name.is_ground():
            candidates = answers_index.get(name, ())
        else:
            candidates = all_answers
        for candidate in candidates:
            extended = match(subst.apply(literal.atom), candidate, subst)
            if extended is not None:
                yield from expand(position + 1, extended)

    for subst in expand(0, head_unifier):
        head = subst.apply(rule.head)
        if not head.is_ground():
            raise GroundingError(
                "derived head %r is not ground; the rule %r is not strongly "
                "range restricted" % (head, rule)
            )
        positive = tuple(
            subst.apply(lit.atom) for lit in rule.body if lit.positive and not lit.is_builtin()
        )
        negative = tuple(subst.apply(lit.atom) for lit in rule.body if lit.negative)
        produced.add(GroundRule(head, positive, negative))
    return produced


def _seminaive_magic(program, query_literals, max_atoms):
    """The semi-naive fast path of :func:`magic_evaluate`.

    For definite programs the paper's architecture applies directly: run the
    declarative magic-sets rewriting and evaluate the rewritten (still
    definite) program bottom-up with the delta-driven engine — only
    query-reachable facts are derived, and no ground rules are ever
    materialized.  Returns ``None`` when the fast path does not apply
    (negation, aggregates, a floundering rewrite, or a program outside the
    engine's class); the caller then runs the grounding oracle, so both
    strategies always return the same answers.
    """
    from repro.core.magic.rewrite import MAGIC, SUP_PREFIX, magic_rewrite
    from repro.engine.seminaive import SeminaiveUnsupported, seminaive_evaluate
    from repro.hilog.errors import StratificationError

    if program.has_negation() or program.has_aggregates():
        return None
    if any(literal.negative for literal in query_literals):
        return None
    # The rewriting's auxiliary predicates live in the same namespace as the
    # user program; a program that mentions ``magic`` or a ``sup_*`` symbol
    # anywhere could collide with them (its answers would be filtered out as
    # auxiliary, or its rules would join against the rewrite's seed facts),
    # so such programs stay on the oracle.
    if any(name == str(MAGIC.name) or name.startswith("%s_" % SUP_PREFIX)
           for name in program.symbols()):
        return None
    try:
        rewritten = magic_rewrite(program, query_literals)
    except StratificationError:
        return None
    try:
        result = seminaive_evaluate(rewritten.rewritten_program(), max_facts=max_atoms)
    except (SeminaiveUnsupported, GroundingError, EvaluationError):
        return None

    def is_auxiliary(atom):
        symbol = outermost_symbol(atom)
        return symbol is not None and (
            symbol == MAGIC or symbol.name.startswith("%s_" % SUP_PREFIX)
        )

    program_atoms = frozenset(atom for atom in result.true if not is_auxiliary(atom))
    query_atom = query_literals[0].atom
    matched = [atom for atom in program_atoms if match(query_atom, atom) is not None]
    matched.sort(key=repr)
    return MagicEvaluationResult(
        answers=tuple(matched),
        interpretation=Interpretation(true=program_atoms, base=program_atoms),
        relevant_atoms=program_atoms,
        call_patterns=tuple(rewritten.binding_patterns),
        ground_rules=0,
    )


def answer_from_store(store, query_literals):
    """Answer a query from a materialized total model in a relation store.

    This is the session-backed path of :func:`magic_evaluate`: a
    :class:`~repro.db.session.DatabaseSession` keeps its (total) perfect
    model maintained in a relation store, so a bound query is a handful of
    index probes — no rewriting, no evaluation.  The answers follow
    :func:`magic_evaluate`'s contract exactly — the ground instances of the
    *first* query literal's atom that are true in the model (additional
    literals drive relevance in the evaluating paths, never filter
    answers) — so any query shape, including negative and conjunctive ones
    the evaluating paths would reject on aggregate programs, is answered by
    one indexed match.  Returns a :class:`MagicEvaluationResult` with
    ``ground_rules`` 0 and the interpretation restricted to the answers.
    """
    pattern = query_literals[0].atom
    from repro.hilog.terms import App

    if pattern.is_ground():
        # Fully bound query: one membership probe against the store.
        matched = [pattern] if pattern in store else []
    elif isinstance(pattern, App) and pattern.name.is_ground():
        # Bound-name query: a single indexed probe on the ground argument
        # positions (interned-identity key), then residual matching for the
        # open positions only.
        positions = tuple(
            i for i, arg in enumerate(pattern.args) if arg.is_ground()
        )
        if len(positions) == 1:
            key = pattern.args[positions[0]]  # bare-term single-position key
        else:
            key = tuple(pattern.args[i] for i in positions)
        candidates, _exact = store.fetch(
            pattern.name, len(pattern.args), positions, key
        )
        matched = [atom for atom in candidates if match(pattern, atom) is not None]
    else:
        # Higher-order / propositional-variable patterns: the store's
        # general candidate scan, then full matching.
        candidates = store.candidates(pattern, Substitution(), ())
        matched = [atom for atom in candidates if match(pattern, atom) is not None]
    matched.sort(key=repr)
    answers = frozenset(matched)
    return MagicEvaluationResult(
        answers=tuple(matched),
        interpretation=Interpretation(true=answers, base=answers),
        relevant_atoms=answers,
        call_patterns=(pattern,),
        ground_rules=0,
    )


def magic_evaluate(program, query, max_atoms=500000, engine="alternating",
                   strategy="ground", store=None):
    """Answer ``query`` against ``program`` by query-driven evaluation.

    ``query`` may be a single atom, a :class:`Literal` tuple, or a string
    already parsed by the caller.  Returns a :class:`MagicEvaluationResult`
    whose ``answers`` are the ground instances of the (first) query atom that
    are true in the well-founded model.

    ``strategy="seminaive"`` evaluates definite programs by magic rewriting
    plus delta-driven bottom-up evaluation over indexed relations (no ground
    rules are materialized; the result's ``ground_rules`` is 0 on that
    path), falling back to the default ``"ground"`` oracle — call-pattern
    propagation plus the ground well-founded computation — whenever the fast
    path does not apply.  Both strategies return the same answers.

    ``store`` is the session-backed path: a relation store already holding
    the program's maintained total model (see :mod:`repro.db`).  Queries
    are then answered by matching the first query atom against the store —
    no rewriting or evaluation runs at all.
    """
    if strategy not in ("ground", "seminaive"):
        raise ValueError("unknown strategy %r (use 'ground' or 'seminaive')" % (strategy,))
    if isinstance(query, Term):
        query_literals = (Literal(query),)
    else:
        query_literals = tuple(query)
    if not query_literals:
        raise ValueError("empty query")

    if store is not None:
        return answer_from_store(store, query_literals)

    if program.has_aggregates():
        raise GroundingError("magic evaluation does not support aggregate rules")

    if strategy == "seminaive":
        fast = _seminaive_magic(program, query_literals, max_atoms)
        if fast is not None:
            return fast

    calls = _CallTable()
    new_calls = []
    for literal in query_literals:
        if calls.add(literal.atom):
            new_calls.append(literal.atom)

    counter = [0]
    renamed_rules = [_rename_rule(rule, counter) for rule in program.rules]

    # Index rules by the outermost symbol of their head so a call only visits
    # rules that could possibly answer it; rules whose head name starts with a
    # variable go into the wildcard bucket and are tried for every call.
    rules_by_symbol = {}
    wildcard_rules = []
    for rule in renamed_rules:
        symbol = outermost_symbol(rule.head)
        if symbol is None:
            wildcard_rules.append(rule)
        else:
            rules_by_symbol.setdefault(symbol, []).append(rule)

    def candidate_rules(call_pattern):
        symbol = outermost_symbol(call_pattern)
        if symbol is None:
            return renamed_rules
        return rules_by_symbol.get(symbol, []) + wildcard_rules

    answers = set()
    answers_index = {}
    ground_rules = set()
    flounder_errors = []

    changed = True
    while changed:
        changed = False
        pending_calls = calls.patterns()
        for call_pattern in pending_calls:
            for rule in candidate_rules(call_pattern):
                produced = _process_rule(
                    rule, call_pattern, answers_index, answers, calls, new_calls,
                    flounder_errors,
                )
                if flounder_errors:
                    raise GroundingError(flounder_errors[0])
                for ground_rule in produced:
                    if ground_rule not in ground_rules:
                        ground_rules.add(ground_rule)
                        changed = True
                    head = ground_rule.head
                    if head not in answers:
                        answers.add(head)
                        answers_index.setdefault(predicate_name(head), []).append(head)
                        changed = True
                    if len(answers) > max_atoms:
                        raise GroundingError(
                            "query-driven evaluation exceeded %d candidate atoms" % max_atoms
                        )
        if new_calls:
            changed = True
            new_calls = []

    ground_program = GroundProgram(tuple(ground_rules))
    interpretation = well_founded_model(ground_program, engine=engine)

    query_atom = query_literals[0].atom
    matched = []
    for atom in interpretation.true:
        if match(query_atom, atom) is not None:
            matched.append(atom)
    matched.sort(key=repr)

    return MagicEvaluationResult(
        answers=tuple(matched),
        interpretation=interpretation,
        relevant_atoms=frozenset(answers),
        call_patterns=tuple(calls.patterns()),
        ground_rules=len(ground_rules),
    )


def answer_query(program, query, **kwargs):
    """Convenience wrapper returning only the tuple of true query instances."""
    return magic_evaluate(program, query, **kwargs).answers
