"""The declarative magic-sets rewriting (Section 6.1, Example 6.6).

``magic_rewrite`` turns a strongly range-restricted HiLog program and a
query into the rewritten rule set of the paper:

* a seed fact ``magic(Q')`` for the (abstracted) query atom,
* for every rule ``H <- B_1, ..., B_n`` and every distinct binding pattern
  with which ``H`` can be called, supplementary rules

      sup_{r,0}(V_0) <- magic(H')
      sup_{r,i}(V_i) <- sup_{r,i-1}(V_{i-1}), B_i          (B_i kept with its sign)
      H             <- sup_{r,n}(V_n)

  and, for every non-builtin subgoal ``B_i``, a magic rule

      magic(B_i') <- sup_{r,i-1}(V_{i-1})

  where the primes denote abstraction of unbound positions by ``$free``
  (:func:`repro.core.magic.adornment.abstract_call`) — the HiLog analogue of
  an adornment — and ``V_i`` are the SIPS-determined supplementary variables.

Because every predicate may be IDB (the paper notes EDB/IDB cannot be told
apart when names can be variables), magic rules are emitted for *all*
subgoals.  The rewriting is performed per reachable binding pattern, starting
from the query and following magic rules, so the output is finite for
Datahilog programs (Lemma 6.3).

The rewritten rules are ordinary :class:`repro.hilog.program.Rule` objects
and can be printed with the standard pretty printer; the test suite checks
the structure produced for the game program of Example 6.6 against the
paper's listing.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.core.magic.adornment import (
    BOUND,
    FREE,
    abstract_call,
    adornment_of,
    call_signature,
    generalize_pattern,
)
from repro.core.magic.sips import left_to_right_sips
from repro.hilog.errors import StratificationError
from repro.hilog.program import Literal, Program, Rule
from repro.hilog.terms import App, Sym, Term, Var, predicate_name
from repro.hilog.unify import unify

#: Reserved predicate names of the rewriting.
MAGIC = Sym("magic")
SUP_PREFIX = "sup"
ANSWER = Sym("answer")


class MagicProgram(NamedTuple):
    """The output of :func:`magic_rewrite`."""

    seed_facts: Tuple[Rule, ...]
    supplementary_rules: Tuple[Rule, ...]
    magic_rules: Tuple[Rule, ...]
    answer_rules: Tuple[Rule, ...]
    query: Tuple[Literal, ...]
    binding_patterns: Tuple[Term, ...]

    def rewritten_program(self):
        """All rewritten rules as a single :class:`Program` (paper's listing order)."""
        return Program(
            self.seed_facts
            + self.supplementary_rules
            + self.answer_rules
            + self.magic_rules
        )

    def rule_count(self):
        return (
            len(self.seed_facts)
            + len(self.supplementary_rules)
            + len(self.magic_rules)
            + len(self.answer_rules)
        )


def _magic_atom(call_pattern):
    return App(MAGIC, (call_pattern,))


def _sup_atom(rule_index, step_index, variables, suffix=""):
    name = Sym("%s_%d_%d%s" % (SUP_PREFIX, rule_index, step_index, suffix))
    return App(name, tuple(variables))


def _pattern_key(call_pattern):
    return generalize_pattern(call_pattern)


_FRESH_COUNTER = [0]


def _strip_markers_to_fresh(pattern):
    """Replace ``$free`` / ``$bound`` markers by fresh variables so the pattern
    can be unified against rule heads.  Bound markers become ``_B<i>``
    variables and free markers become ``_F<i>`` variables, which lets the
    caller recover which head variables a call binds."""

    def walk(term):
        if term == FREE:
            _FRESH_COUNTER[0] += 1
            return Var("_F%d" % _FRESH_COUNTER[0])
        if term == BOUND:
            _FRESH_COUNTER[0] += 1
            return Var("_B%d" % _FRESH_COUNTER[0])
        if isinstance(term, App):
            return App(walk(term.name), tuple(walk(argument) for argument in term.args))
        return term

    return walk(pattern)


def _analyse_call(head, call_pattern):
    """Match a rule head against a call pattern.

    Returns ``(bound_head_variables, head_pattern)`` or ``None`` when the
    rule cannot answer the call.  ``head_pattern`` is the argument the
    supplementary-0 rule passes to ``magic`` — the head with the call's free
    positions abstracted to ``$free`` — so that facts and heads with
    constants in free positions are matched correctly.
    """
    stripped = _strip_markers_to_fresh(call_pattern)
    unifier = unify(head, stripped)
    if unifier is None:
        return None

    bound = set()
    for variable in head.variables():
        value = unifier.apply(variable)
        if isinstance(value, Var):
            if value.name.startswith("_B"):
                bound.add(variable)
        else:
            bound.add(variable)

    def rebuild(head_node, pattern_node):
        """Walk the head and the call pattern in lockstep: free call positions
        become ``$free`` in the head pattern, bound call positions keep the
        head's own subterm (a variable that the supplementary-0 rule will
        extract from the magic atom, or a constant)."""
        if pattern_node == FREE:
            return FREE
        if (
            isinstance(head_node, App)
            and isinstance(pattern_node, App)
            and len(head_node.args) == len(pattern_node.args)
        ):
            return App(
                rebuild(head_node.name, pattern_node.name),
                tuple(
                    rebuild(h_arg, p_arg)
                    for h_arg, p_arg in zip(head_node.args, pattern_node.args)
                ),
            )
        return head_node

    head_pattern = rebuild(head, call_pattern)
    return bound, head_pattern


def magic_rewrite(program, query, max_patterns=10000):
    """Rewrite ``program`` for ``query`` (a literal tuple or a single atom).

    Returns a :class:`MagicProgram`.  Raises :class:`StratificationError`
    when a rule flounders under the left-to-right SIPS for some reachable
    binding pattern (negative or variable-named subgoal reached before its
    variables are bound), mirroring the paper's footnote 10 requirement.
    """
    if isinstance(query, Term):
        query_literals = (Literal(query),)
    else:
        query_literals = tuple(query)
    if not query_literals:
        raise ValueError("empty query")

    seed_facts = []
    pending = []
    seen_patterns = {}
    for literal in query_literals:
        pattern = abstract_call(literal.atom, bound_variables=frozenset())
        key = _pattern_key(pattern)
        if key not in seen_patterns:
            seen_patterns[key] = pattern
            pending.append(pattern)
            seed_facts.append(Rule(_magic_atom(pattern)))

    supplementary_rules = []
    magic_rules = []
    answer_rules = []
    rules = list(program.rules)

    processed = set()
    while pending:
        if len(seen_patterns) > max_patterns:
            raise StratificationError(
                "magic rewriting produced more than %d binding patterns; the "
                "program/query combination is unlikely to terminate" % max_patterns
            )
        call_pattern = pending.pop()
        pattern_id = _pattern_key(call_pattern)
        if pattern_id in processed:
            continue
        processed.add(pattern_id)

        for rule_index, rule in enumerate(rules):
            renamed = rule.rename_apart([rule_index * 100])
            analysis = _analyse_call(renamed.head, call_pattern)
            if analysis is None:
                continue  # this rule cannot answer this call
            bound, head_pattern = analysis
            steps = left_to_right_sips(renamed, bound)
            for step in steps:
                if step.flounders:
                    raise StratificationError(
                        "rule %r flounders under the left-to-right SIPS for call "
                        "pattern %r (subgoal %r reached with unbound variables)"
                        % (rule, call_pattern, step.literal)
                    )

            # Supplementary predicates are disambiguated by the call's
            # adornment when the same rule is reachable under several binding
            # patterns; the fully bound pattern keeps the paper's plain
            # sup_{r,i} naming.
            adornment = adornment_of(head_pattern)
            suffix = "" if set(adornment) == {"b"} else "_" + adornment

            # sup_{r,0}(V_0) <- magic(H')
            initial_vars = tuple(sorted(bound & renamed.head.variables(), key=lambda v: v.name))
            previous_sup = _sup_atom(rule_index + 1, 0, initial_vars, suffix)
            supplementary_rules.append(
                Rule(previous_sup, (Literal(_magic_atom(head_pattern)),))
            )

            for step in steps:
                literal = step.literal
                step_number = step.index + 1
                next_vars = tuple(
                    sorted(step.bound_after & _needed_after(renamed, step.index), key=lambda v: v.name)
                )
                next_sup = _sup_atom(rule_index + 1, step_number, next_vars, suffix)
                supplementary_rules.append(Rule(next_sup, (Literal(previous_sup), literal)))
                if not literal.is_builtin():
                    # The magic rule passes the actual bindings ...
                    subgoal_pattern = abstract_call(literal.atom, step.bound_before)
                    magic_rules.append(
                        Rule(_magic_atom(subgoal_pattern), (Literal(previous_sup),))
                    )
                    # ... while recursive processing only needs the binding
                    # pattern (adornment) of the new call.
                    signature = call_signature(literal.atom, step.bound_before)
                    key = _pattern_key(signature)
                    if key not in seen_patterns:
                        seen_patterns[key] = signature
                        pending.append(signature)
                previous_sup = next_sup

            # H <- sup_{r,n}(V_n)
            answer_rules.append(Rule(renamed.head, (Literal(previous_sup),)))

    return MagicProgram(
        _dedup(seed_facts),
        _dedup(supplementary_rules),
        _dedup(magic_rules),
        _dedup(answer_rules),
        query_literals,
        tuple(seen_patterns.values()),
    )


def _dedup(rules):
    """Drop duplicate rewritten rules while keeping the first occurrence's order.

    Processing the same original rule under several call patterns can emit
    textually identical supplementary/magic rules; only one copy is kept.
    """
    seen = set()
    unique = []
    for rule in rules:
        if rule not in seen:
            seen.add(rule)
            unique.append(rule)
    return tuple(unique)


def _needed_after(rule, position):
    """Variables needed strictly after body position ``position`` or by the head."""
    needed = set(rule.head.variables())
    for literal in rule.body[position + 1:]:
        needed |= literal.variables()
    for aggregate in rule.aggregates:
        needed |= aggregate.variables()
    return needed
