"""Range restriction for HiLog programs (Definitions 5.5 and 5.6).

The paper generalizes the classical safety condition in two strengths:

* **Range restricted** (Definition 5.5): head *argument* variables are bound
  by positive body arguments; negative-literal variables are bound by
  positive body arguments or appear in the head's *name*; and the positive
  body literals can be ordered so that every variable used in a predicate
  name is bound by an earlier literal's arguments or appears in the head's
  name.  Queries must then bind predicate names (``is_query_range_restricted``).

* **Strongly range restricted** (Definition 5.6): as above, but head *name*
  variables must also be bound by positive body arguments, negative-literal
  variables may not rely on the head name, and name variables must be bound
  strictly by earlier body literals.  Arbitrary queries are then allowed.

Theorem 5.3: the well-founded semantics of range-restricted HiLog programs
is preserved under extensions.  Theorem 5.4: the stable-model semantics of
*strongly* range-restricted programs is preserved under extensions (and the
paper gives a counterexample showing plain range restriction is not enough).
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.hilog.program import Literal, Program, Rule
from repro.hilog.terms import App, Sym, Term, Var, atom_arguments, predicate_name


def _argument_variables(atom):
    """Variables occurring in argument positions of an atom."""
    result = set()
    for argument in atom_arguments(atom):
        result |= argument.variables()
    return result


def _name_variables(atom):
    """Variables occurring in the predicate-name part of an atom."""
    return predicate_name(atom).variables()


def _positive_body_atoms(rule):
    """The positive, non-builtin body atoms, in textual order."""
    return [lit.atom for lit in rule.body if lit.positive and not lit.is_builtin()]


def _builtin_bound_variables(rule, already_bound):
    """Variables bound by assignment builtins (``V is E`` / ``V = E``) whose
    right-hand side is bound, and by aggregates.  Applied to closure."""
    bound = set(already_bound)
    changed = True
    while changed:
        changed = False
        for literal in rule.builtin_literals():
            atom = literal.atom
            if (
                isinstance(atom, App)
                and isinstance(atom.name, Sym)
                and atom.name.name in ("is", "=")
                and len(atom.args) == 2
                and isinstance(atom.args[0], Var)
                and atom.args[0] not in bound
                and atom.args[1].variables() <= bound
            ):
                bound.add(atom.args[0])
                changed = True
    for aggregate in rule.aggregates:
        bound |= _argument_variables(aggregate.condition)
        bound |= aggregate.result.variables()
    return bound


def _name_ordering_exists(rule, seed_variables):
    """Condition 3 of Definitions 5.5/5.6: is there an ordering of the
    positive body literals such that every predicate-name variable of a
    literal is bound by an earlier literal's arguments or by ``seed_variables``?

    A greedy schedule is complete here: scheduling any currently eligible
    literal only enlarges the set of bound variables, so it can never block a
    schedule that would otherwise exist.
    """
    atoms = _positive_body_atoms(rule)
    bound = set(seed_variables)
    remaining = list(range(len(atoms)))
    while remaining:
        progress = False
        for index in list(remaining):
            if _name_variables(atoms[index]) <= bound:
                bound |= _argument_variables(atoms[index])
                remaining.remove(index)
                progress = True
                break
        if not progress:
            return False
    return True


class RangeRestrictionViolation(NamedTuple):
    """One failed condition of Definition 5.5, with the offending parts.

    ``condition`` is ``"head-argument"`` (condition 1: a head argument
    variable is not bound by any positive body argument),
    ``"negation"`` (condition 2: a negative literal uses a variable bound
    neither by positive body arguments nor by the head's name) or
    ``"name-ordering"`` (condition 3: no ordering of the positive body
    literals binds a literal's predicate-name variables before it runs).
    ``variables`` are the unbound variables, sorted by name; ``literal`` is
    the offending body literal for the per-literal conditions, ``None`` for
    the head condition.
    """

    condition: str
    variables: Tuple[Var, ...]
    literal: Optional[Literal]


def _sorted_vars(variables):
    return tuple(sorted(variables, key=lambda v: v.name))


def range_restriction_violations(rule):
    """Structured Definition-5.5 violations of a single rule.

    Returns an empty tuple exactly when :func:`rule_is_range_restricted`
    holds; otherwise one :class:`RangeRestrictionViolation` per failed
    condition/literal, so diagnostics (:mod:`repro.lint`) can name the
    unbound variable and the literal instead of reporting a bare boolean.
    """
    positive_atoms = _positive_body_atoms(rule)
    positive_argument_vars = set()
    for atom in positive_atoms:
        positive_argument_vars |= _argument_variables(atom)
    positive_argument_vars = _builtin_bound_variables(rule, positive_argument_vars)

    head_argument_vars = _argument_variables(rule.head)
    head_name_vars = _name_variables(rule.head)

    violations = []
    unbound_head = head_argument_vars - positive_argument_vars
    if unbound_head:
        violations.append(
            RangeRestrictionViolation("head-argument", _sorted_vars(unbound_head), None)
        )
    for literal in rule.negative_literals():
        unbound = literal.atom.variables() - (positive_argument_vars | head_name_vars)
        if unbound:
            violations.append(
                RangeRestrictionViolation("negation", _sorted_vars(unbound), literal)
            )
    # Condition 3: replay the greedy schedule of `_name_ordering_exists` and
    # report every literal left unscheduled (greedy completeness makes the
    # stuck set independent of scheduling order).
    bound = set(head_name_vars)
    remaining = [lit for lit in rule.body if lit.positive and not lit.is_builtin()]
    progress = True
    while progress and remaining:
        progress = False
        for literal in list(remaining):
            if _name_variables(literal.atom) <= bound:
                bound |= _argument_variables(literal.atom)
                remaining.remove(literal)
                progress = True
                break
    for literal in remaining:
        violations.append(
            RangeRestrictionViolation(
                "name-ordering",
                _sorted_vars(_name_variables(literal.atom) - bound),
                literal,
            )
        )
    return tuple(violations)


def rule_is_range_restricted(rule):
    """Definition 5.5 for a single HiLog rule."""
    positive_atoms = _positive_body_atoms(rule)
    positive_argument_vars = set()
    for atom in positive_atoms:
        positive_argument_vars |= _argument_variables(atom)
    positive_argument_vars = _builtin_bound_variables(rule, positive_argument_vars)

    head_argument_vars = _argument_variables(rule.head)
    head_name_vars = _name_variables(rule.head)

    # 1. Head argument variables bound by positive body arguments.
    if not head_argument_vars <= positive_argument_vars:
        return False
    # 2. Negative-literal variables bound by positive body arguments or by
    #    the head's name.
    for literal in rule.negative_literals():
        if not literal.atom.variables() <= positive_argument_vars | head_name_vars:
            return False
    # 3. An ordering exists, seeded by the head-name variables.
    return _name_ordering_exists(rule, head_name_vars)


def rule_is_strongly_range_restricted(rule):
    """Definition 5.6 for a single HiLog rule."""
    positive_atoms = _positive_body_atoms(rule)
    positive_argument_vars = set()
    for atom in positive_atoms:
        positive_argument_vars |= _argument_variables(atom)
    positive_argument_vars = _builtin_bound_variables(rule, positive_argument_vars)

    # 1. Every head variable (argument *or* name) bound by positive body arguments.
    if not rule.head.variables() <= positive_argument_vars:
        return False
    # 2. Negative-literal variables bound by positive body arguments only.
    for literal in rule.negative_literals():
        if not literal.atom.variables() <= positive_argument_vars:
            return False
    # 3. An ordering exists with an empty seed.
    return _name_ordering_exists(rule, set())


def is_range_restricted(program):
    """Definition 5.5 lifted to programs."""
    return all(rule_is_range_restricted(rule) for rule in program.rules)


def is_strongly_range_restricted(program):
    """Definition 5.6 lifted to programs."""
    return all(rule_is_strongly_range_restricted(rule) for rule in program.rules)


def is_query_range_restricted(query_literals):
    """Range restriction for queries (paper, after Definition 5.5).

    A query ``Q(X1, ..., Xn)`` is range restricted when the rule
    ``answer(X1, ..., Xn) <- Q`` is range restricted; in particular the
    query must bind all predicate names.
    """
    literals = tuple(query_literals)
    variables = set()
    for literal in literals:
        variables |= literal.variables()
    answer_head = App(Sym("$answer"), tuple(sorted(variables, key=lambda v: v.name)))
    return rule_is_range_restricted(Rule(answer_head, literals))


def classify_rule(rule):
    """Classify a rule as in Example 5.3.

    Returns ``"strongly_range_restricted"``, ``"range_restricted"`` or
    ``"unrestricted"`` (the strongest class the rule belongs to).
    """
    if rule_is_strongly_range_restricted(rule):
        return "strongly_range_restricted"
    if rule_is_range_restricted(rule):
        return "range_restricted"
    return "unrestricted"


def classify_program(program):
    """Per-rule classification of a whole program (rule -> class string)."""
    return {rule: classify_rule(rule) for rule in program.rules}
