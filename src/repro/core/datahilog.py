"""Datahilog programs (Definition 6.7) and the finiteness lemma (Lemma 6.3).

A HiLog program is a *Datahilog* program when, in every atom of every rule,
both the predicate name and all arguments are variables or constant symbols —
no symbol is ever applied to build a nested term, and the only use of
variables in predicate names is as a bare variable.  The rule

    winning(M, X) <- game(M), M(X, Y), not winning(M, Y)

is Datahilog, while ``tc(G)(X, Y) <- graph(G), G(X, Z), tc(G)(Z, Y)`` is not
(its head name ``tc(G)`` is a compound term).

Lemma 6.3: for a strongly range-restricted Datahilog program the set of
ground atoms not made false by the well-founded semantics is finite — it is
contained in ``T = {c0(c1, ..., cn) : ci constants of P, n an arity of P}``.
This is what guarantees termination of the magic-sets evaluation in the
Datalog-like case.
"""

from __future__ import annotations

from itertools import product
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.hilog.program import Program, Rule
from repro.hilog.terms import App, Num, Sym, Term, Var


def _is_simple(term):
    """A variable or a constant symbol (no application)."""
    return isinstance(term, (Var, Sym)) and not isinstance(term, App)


def _atom_is_datahilog(atom):
    if _is_simple(atom):
        return True
    if isinstance(atom, App):
        if not _is_simple(atom.name):
            return False
        return all(_is_simple(argument) for argument in atom.args)
    return False


def rule_is_datahilog(rule):
    """Definition 6.7 for one rule (builtins and aggregates are exempted,
    since their arguments are arithmetic rather than HiLog structure)."""
    atoms = [rule.head]
    for literal in rule.body:
        if literal.is_builtin():
            continue
        atoms.append(literal.atom)
    for aggregate in rule.aggregates:
        atoms.append(aggregate.condition)
    return all(_atom_is_datahilog(atom) for atom in atoms)


def is_datahilog(program):
    """Definition 6.7 lifted to programs."""
    return all(rule_is_datahilog(rule) for rule in program.rules)


def program_constants(program):
    """The constant symbols appearing anywhere in the program."""
    constants = set()

    def visit(term):
        if isinstance(term, Sym):
            constants.add(term)
        elif isinstance(term, App):
            visit(term.name)
            for argument in term.args:
                visit(argument)

    for rule in program.rules:
        visit(rule.head)
        for literal in rule.body:
            if not literal.is_builtin():
                visit(literal.atom)
        for aggregate in rule.aggregates:
            visit(aggregate.condition)
            visit(aggregate.value)
            visit(aggregate.result)
    return constants


def program_arities(program):
    """The set of atom arities used by the program (0 for bare symbols)."""
    arities = set()
    for rule in program.rules:
        atoms = [rule.head] + [lit.atom for lit in rule.body if not lit.is_builtin()]
        for aggregate in rule.aggregates:
            atoms.append(aggregate.condition)
        for atom in atoms:
            if isinstance(atom, App):
                arities.add(len(atom.args))
            else:
                arities.add(0)
    return arities


def datahilog_relevant_atoms(program, max_enumeration=5_000_000):
    """Lemma 6.3's finite superset ``T`` of the non-false atoms.

    Returns the set of atoms ``c0(c1, ..., cn)`` for constants ``ci`` of the
    program and arities ``n`` used by the program (the bare constants are
    included for the 0-ary case).  Raises :class:`ValueError` when the
    enumeration would exceed ``max_enumeration`` atoms — the size is
    ``sum_n |C|^(n+1)``, which the caller can obtain cheaply from
    :func:`datahilog_bound` instead.
    """
    if not is_datahilog(program):
        raise ValueError("datahilog_relevant_atoms requires a Datahilog program")
    constants = sorted(program_constants(program), key=lambda s: s.name)
    arities = sorted(program_arities(program))
    if datahilog_bound(program) > max_enumeration:
        raise ValueError(
            "the Lemma 6.3 superset has more than %d atoms; use datahilog_bound "
            "for its size instead of enumerating it" % max_enumeration
        )
    atoms = set()
    for arity in arities:
        if arity == 0:
            atoms.update(constants)
            continue
        for name in constants:
            for args in product(constants, repeat=arity):
                atoms.add(App(name, args))
    return atoms


def datahilog_bound(program):
    """The cardinality of Lemma 6.3's superset ``T`` (without enumerating it)."""
    constants = program_constants(program)
    arities = program_arities(program)
    total = 0
    for arity in arities:
        if arity == 0:
            total += len(constants)
        else:
            total += len(constants) ** (arity + 1)
    return total
