"""Modular stratification for HiLog (Section 6, Definitions 6.5/6.6, Figure 1).

Because a HiLog program's mutually recursive components cannot be determined
a priori when predicate names contain variables (Example 6.2), the paper
settles the *lowest* components one at a time:

1. Split the remaining rules ``R`` into ``R_v`` (variables in the head
   predicate name) and ``R_g`` (ground head predicate names).  Fail if
   ``R_g`` is empty or contains a rule whose head predicate is already
   settled (the situation of Example 6.5).
2. Build the dependency graph over the predicate names appearing *ground* in
   ``R``, with an edge from the head name of each ``R_g`` rule to each ground
   body name, and let ``T`` be the union of the strongly connected
   components with no outgoing edge.
3. Let ``R_T`` be the ``R_g`` rules whose head name is in ``T``.  Fail if
   ``R_T`` mentions a variable predicate name or is not locally stratified.
4. Compute the (total) well-founded model ``M_T`` of ``R_T``, add ``T`` to
   the settled set, and replace ``R`` by the *HiLog reduction*
   (Definition 6.5) of the remaining rules modulo the accumulated model.

When the loop empties ``R`` the program is modularly stratified for HiLog,
and the union of the per-round models is its total well-founded model —
which is also its unique stable model (Theorem 6.1).

The module also implements the paper's aggregate extension (the
parts-explosion program): a component containing aggregate rules is
evaluated by recomputation to fixpoint, which reaches the perfect model
exactly when the aggregation recurses through an acyclic (per-machine)
part hierarchy, i.e. when the program is modularly stratified *through
aggregation* in the paper's sense.

Two deliberate, documented deviations from the letter of the paper, both
forced by the infinite HiLog universe:

* Definition 6.5 instantiates argument variables of settled-name literals
  over the whole universe; we instead *match positive* settled literals
  against the settled model (equivalent, since instances with false settled
  subgoals are deleted anyway) and require negative settled literals to be
  ground by that point or defer them to the grounding of a later round.
* Local stratification of ``R_T`` is checked on its relevance-driven
  instantiation rather than on the full Herbrand instantiation; atoms the
  relevance grounding omits are unfounded (hence false), so the computed
  model is unaffected.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.engine.aggregates import evaluate_aggregate, group_variables
from repro.engine.builtins import solve_builtin
from repro.engine.grounding import GroundProgram, GroundRule, relevant_ground_program
from repro.engine.interpretation import Interpretation
from repro.engine.wellfounded import well_founded_model
from repro.hilog.errors import EvaluationError, GroundingError, StratificationError
from repro.hilog.program import Literal, Program, Rule
from repro.hilog.subst import Substitution
from repro.hilog.terms import Term, Var, predicate_name
from repro.hilog.unify import match
from repro.normal.depgraph import DependencyGraph
from repro.normal.stratification import is_locally_stratified_ground


class HiLogModularResult(NamedTuple):
    """Outcome of the Figure-1 procedure."""

    is_modularly_stratified: bool
    model: Optional[Interpretation]
    reason: str
    rounds: Tuple[FrozenSet[Term], ...]


# ---------------------------------------------------------------------------
# The HiLog reduction (Definition 6.5)
# ---------------------------------------------------------------------------

def _settled_index(settled_true):
    index = {}
    for atom in settled_true:
        index.setdefault(predicate_name(atom), []).append(atom)
    return index


def _reduce_rule(rule, settled_names, settled_index, settled_true):
    """Reduce one rule modulo the settled model.

    Yields partially instantiated rules in which no remaining *positive*
    subgoal has a settled predicate name.  Negative settled subgoals that are
    already ground are evaluated; non-ground ones are kept and resolved when
    the rule is eventually grounded.
    """
    pending = [(rule, Substitution())]
    results = []
    while pending:
        current, subst = pending.pop()
        # Find the first positive literal whose (instantiated) name is settled.
        target_position = None
        for position, literal in enumerate(current.body):
            if literal.is_builtin() or literal.negative:
                continue
            name = subst.apply(predicate_name(literal.atom))
            if name.is_ground() and name in settled_names:
                target_position = position
                break
        if target_position is None:
            results.append((current, subst))
            continue
        literal = current.body[target_position]
        pattern = subst.apply(literal.atom)
        name = predicate_name(pattern)
        remaining_body = current.body[:target_position] + current.body[target_position + 1:]
        for atom in settled_index.get(name, ()):  # instances with false subgoals are dropped
            extended = match(pattern, atom, subst)
            if extended is not None:
                pending.append((Rule(current.head, remaining_body, current.aggregates), extended))

    for current, subst in results:
        head = subst.apply(current.head)
        new_body = []
        alive = True
        for literal in current.body:
            atom = subst.apply(literal.atom)
            name = predicate_name(atom)
            if literal.negative and name.is_ground() and name in settled_names and atom.is_ground():
                if atom in settled_true:
                    alive = False
                    break
                continue  # certainly false settled atom: the negative subgoal holds
            if literal.is_builtin() and atom.is_ground():
                solutions = solve_builtin(atom, Substitution())
                if not solutions:
                    alive = False
                    break
                continue
            new_body.append(Literal(atom, literal.positive))
        if not alive:
            continue
        new_aggregates = tuple(aggregate.substitute(subst) for aggregate in current.aggregates)
        yield Rule(head, tuple(new_body), new_aggregates)


def hilog_reduction(rules, settled_names, settled_true):
    """The HiLog reduction of ``rules`` modulo the settled model
    (Definition 6.5), iterated until no positive settled subgoal remains."""
    settled_names = set(settled_names)
    settled_index = _settled_index(settled_true)
    current = list(rules)
    while True:
        reduced = []
        changed = False
        for rule in current:
            produced = list(_reduce_rule(rule, settled_names, settled_index, settled_true))
            if len(produced) != 1 or produced[0] != rule:
                changed = True
            reduced.extend(produced)
        current = reduced
        if not changed:
            return tuple(current)


# ---------------------------------------------------------------------------
# Figure 1: the modular stratification procedure
# ---------------------------------------------------------------------------

def _has_variable_head_name(rule):
    return not predicate_name(rule.head).is_ground()


def _body_names(rule):
    """Predicate-name terms of the rule's body literals and aggregate conditions."""
    names = []
    for literal in rule.body:
        if literal.is_builtin():
            continue
        names.append(predicate_name(literal.atom))
    for aggregate in rule.aggregates:
        names.append(predicate_name(aggregate.condition))
    return names


def _ground_names_in(rules):
    names = set()
    for rule in rules:
        head_name = predicate_name(rule.head)
        if head_name.is_ground():
            names.add(head_name)
        for name in _body_names(rule):
            if name.is_ground():
                names.add(name)
    return names


def _dependency_graph(ground_rules, nodes, left_to_right):
    graph = DependencyGraph()
    for node in nodes:
        graph.add_node(node)
    for rule in ground_rules:
        head_name = predicate_name(rule.head)
        body_names = _body_names(rule)
        if left_to_right:
            body_names = body_names[:1]
        for name in body_names:
            if name.is_ground() and name in nodes:
                graph.add_edge(head_name, name)
    return graph


def _lowest_components(graph):
    """Union of the SCCs with no outgoing edge in the condensation."""
    components, component_of, component_edges = graph.condensation()
    lowest = set()
    for index, component in enumerate(components):
        if not component_edges[index]:
            lowest |= set(component)
    return lowest


def _evaluate_settled_subgoals(ground_rule, settled_names, settled_true):
    """Resolve residual settled subgoals of a ground rule against the model.

    Returns the simplified :class:`GroundRule`, or ``None`` when a settled
    subgoal refutes the rule.
    """
    positive = []
    for atom in ground_rule.positive:
        if predicate_name(atom) in settled_names:
            if atom in settled_true:
                continue
            return None
        positive.append(atom)
    negative = []
    for atom in ground_rule.negative:
        if predicate_name(atom) in settled_names:
            if atom in settled_true:
                return None
            continue
        negative.append(atom)
    return GroundRule(ground_rule.head, tuple(positive), tuple(negative))


def _ground_component(rules, settled_names, settled_true, max_atoms, max_term_depth):
    """Relevance-ground the rules of one component, resolving residual
    settled subgoals against the accumulated model."""
    program = Program(tuple(rules))
    ground = relevant_ground_program(
        program,
        extra_facts=settled_true,
        max_atoms=max_atoms,
        max_term_depth=max_term_depth,
    )
    simplified = []
    base = set()
    for ground_rule in ground.rules:
        if predicate_name(ground_rule.head) in settled_names:
            # A settled predicate re-appears as a head: Figure 1 rejects this,
            # but it is caught by the caller; here we simply skip the rule.
            continue
        resolved = _evaluate_settled_subgoals(ground_rule, settled_names, settled_true)
        if resolved is not None:
            simplified.append(resolved)
            base.add(resolved.head)
            base.update(resolved.positive)
            base.update(resolved.negative)
    return GroundProgram(simplified, base=base)


# ---------------------------------------------------------------------------
# Aggregate components (parts explosion): recomputation to fixpoint
# ---------------------------------------------------------------------------

def _evaluate_rule_once(rule, atoms_by_name, all_atoms, settled_names, settled_true):
    """All head instances derivable from ``rule`` against the current atoms."""
    derived = set()

    def expand(position, subst):
        if position == len(rule.body):
            yield subst
            return
        literal = rule.body[position]
        atom = subst.apply(literal.atom)
        if literal.is_builtin():
            try:
                solutions = solve_builtin(literal.atom, subst)
            except EvaluationError:
                # Defer: try again after the remaining literals bind more variables.
                for later in expand(position + 1, subst):
                    for solution in solve_builtin(literal.atom, later):
                        yield solution
                return
            for solution in solutions:
                yield from expand(position + 1, solution)
            return
        name = predicate_name(atom)
        if literal.negative:
            if not atom.is_ground():
                raise GroundingError("negative literal %r flounders" % (atom,))
            holds = atom in all_atoms or atom in settled_true
            if not holds:
                yield from expand(position + 1, subst)
            return
        candidates = []
        if name.is_ground():
            candidates = list(atoms_by_name.get(name, ()))
            if name in settled_names:
                candidates = [a for a in settled_true if predicate_name(a) == name]
        else:
            candidates = list(all_atoms) + list(settled_true)
        for candidate in candidates:
            extended = match(subst.apply(literal.atom), candidate, subst)
            if extended is not None:
                yield from expand(position + 1, extended)

    for subst in expand(0, Substitution()):
        current_substs = [subst]
        for aggregate in rule.aggregates:
            next_substs = []
            condition_name = predicate_name(aggregate.condition)
            extension = atoms_by_name.get(condition_name, [])
            group_vars = group_variables(aggregate, rule)
            for candidate in current_substs:
                next_substs.extend(
                    evaluate_aggregate(aggregate, candidate, extension, group_vars=group_vars)
                )
            current_substs = next_substs
        for final in current_substs:
            head = final.apply(rule.head)
            if not head.is_ground():
                raise GroundingError("derived head %r is not ground" % (head,))
            derived.add(head)
    return derived


def evaluate_aggregate_component(rules, settled_names, settled_true, max_iterations=1000):
    """Evaluate a component containing aggregate rules by recomputation to
    fixpoint.

    Each iteration recomputes the component's derivable atoms from scratch
    against the previous iteration's atoms (a Jacobi-style iteration), so
    stale aggregate values disappear.  For programs that are modularly
    stratified through aggregation (acyclic part hierarchies, in the paper's
    running example) the iteration converges to the perfect model; otherwise
    it fails to converge and a :class:`StratificationError` is raised.
    """
    settled_names = set(settled_names)
    atoms = set()
    for iteration in range(max_iterations):
        atoms_by_name = {}
        for atom in atoms:
            atoms_by_name.setdefault(predicate_name(atom), []).append(atom)
        new_atoms = set()
        for rule in rules:
            new_atoms |= _evaluate_rule_once(rule, atoms_by_name, atoms, settled_names, settled_true)
        if new_atoms == atoms:
            return atoms
        atoms = new_atoms
    raise StratificationError(
        "aggregate component did not converge after %d iterations; the program "
        "is not modularly stratified through aggregation" % max_iterations
    )


# ---------------------------------------------------------------------------
# Semi-naive fast paths (strategy="seminaive")
# ---------------------------------------------------------------------------

def _names_all_ground(rules):
    """True when every head/body/aggregate predicate name is ground."""
    for rule in rules:
        if not predicate_name(rule.head).is_ground():
            return False
        for name in _body_names(rule):
            if not name.is_ground():
                return False
    return True


def _seminaive_whole_program(program, max_atoms, max_term_depth):
    """Evaluate the whole program with the semi-naive engine when it is
    stratified at the predicate-indicator level.

    Only attempted when every predicate name in the program is ground: in
    that case no reduction round can ever re-introduce a settled head (the
    Example 6.5 failure mode), so "stratified" implies that the Figure-1
    procedure would succeed — the fast path cannot change the verdict, only
    skip the grounding work.  Aggregate programs always go through Figure 1:
    :func:`evaluate_aggregate_component` folds an aggregate only over its
    component's own atoms, whereas the engine folds over every stored fact,
    so bypassing the procedure could change which groups exist.  Returns a
    :class:`HiLogModularResult` or ``None`` when the engine declines (the
    caller then runs Figure 1).

    Programs with a cycle through negation at the indicator level get one
    more fast check before the grounding path: the alternating-fixpoint
    engine (:mod:`repro.engine.seminaive.wellfounded`) computes their
    well-founded model without grounding, and a *partial* model refutes
    modular stratification outright (Theorem 6.1: modularly stratified ⇒
    total well-founded model), so the negative verdict is returned without
    instantiating a single ground rule.  A total model proves nothing —
    Figure 1 additionally demands locally stratified component reductions
    (cf. ``p :- not q.  q :- not p.  p.``, total but rejected) — so that
    case still falls through to the oracle.
    """
    from repro.engine.seminaive import SeminaiveUnsupported, seminaive_evaluate

    if program.has_aggregates() or not _names_all_ground(program.rules):
        return None
    try:
        result = seminaive_evaluate(
            program, max_facts=max_atoms, max_term_depth=max_term_depth
        )
    except SeminaiveUnsupported:
        return _seminaive_refute_by_wellfounded(program, max_atoms, max_term_depth)
    except (GroundingError, EvaluationError):
        return None
    model = Interpretation(result.true, base=result.true)
    return HiLogModularResult(True, model, "", result.strata)


def _seminaive_refute_by_wellfounded(program, max_atoms, max_term_depth):
    """Try to refute modular stratification through the alternating engine
    (see :func:`_seminaive_whole_program`); ``None`` when inconclusive."""
    from repro.engine.seminaive import SeminaiveUnsupported
    from repro.engine.seminaive.wellfounded import seminaive_well_founded

    try:
        wellfounded = seminaive_well_founded(
            program, max_facts=max_atoms, max_term_depth=max_term_depth
        )
    except (SeminaiveUnsupported, GroundingError, EvaluationError):
        return None
    if wellfounded.undefined:
        sample = sorted(map(repr, wellfounded.undefined))[:3]
        return HiLogModularResult(
            False, None,
            "the well-founded model leaves %d atom(s) undefined (e.g. %s), "
            "so the program has no total well-founded model and is not "
            "modularly stratified (Theorem 6.1)"
            % (len(wellfounded.undefined), ", ".join(sample)),
            (),
        )
    return None


def _seminaive_component(component_rules, settled_true, max_atoms, max_term_depth):
    """Evaluate one Figure-1 component with the semi-naive engine.

    The component's rules are evaluated with the settled model seeded as
    extra facts; positive and (ground-by-join-time) negative settled
    subgoals then resolve against the store exactly as
    :func:`_evaluate_settled_subgoals` would resolve them after grounding.
    Returns ``component_true`` or ``None`` when the engine declines (within-
    component negation, unschedulable bodies, resource caps) — the caller
    falls back to the grounding oracle, so the verdict never diverges.
    """
    from repro.engine.seminaive import SeminaiveUnsupported, seminaive_evaluate

    try:
        result = seminaive_evaluate(
            Program(tuple(component_rules)),
            extra_facts=settled_true,
            max_facts=max_atoms,
            max_term_depth=max_term_depth,
        )
    except (SeminaiveUnsupported, GroundingError, EvaluationError):
        return None
    return set(result.true) - settled_true


# ---------------------------------------------------------------------------
# The procedure of Figure 1
# ---------------------------------------------------------------------------

def modularly_stratified_for_hilog(program, left_to_right=False, max_rounds=1000,
                                   max_atoms=200000, max_term_depth=80,
                                   strategy="ground"):
    """Run the Figure-1 procedure on a HiLog program.

    Returns a :class:`HiLogModularResult`; when the verdict is positive the
    result's ``model`` is the program's total well-founded model
    (Theorem 6.1).  Set ``left_to_right=True`` for the refinement used by the
    magic-sets method (edges only to the leftmost body predicate).

    ``strategy`` selects the evaluation engine: ``"ground"`` (the default)
    is the reference oracle — relevance grounding plus the ground
    well-founded computation; ``"seminaive"`` evaluates stratified
    (sub)programs bottom-up over indexed relations without materializing
    ground rules, falling back to the oracle wherever the fast path does not
    apply.  Both strategies compute the same true atoms; the ``seminaive``
    model's atom base only contains the true atoms (false-by-closed-world
    atoms are not materialized).
    """
    if strategy not in ("ground", "seminaive"):
        raise ValueError("unknown strategy %r (use 'ground' or 'seminaive')" % (strategy,))
    if strategy == "seminaive":
        fast = _seminaive_whole_program(program, max_atoms, max_term_depth)
        if fast is not None:
            return fast

    remaining = list(program.rules)
    settled_names = set()
    settled_true = set()
    base = set()
    rounds = []

    for _round in range(max_rounds):
        if not remaining:
            model = Interpretation(settled_true, base - settled_true, base=base)
            return HiLogModularResult(True, model, "", tuple(rounds))

        ground_head_rules = [rule for rule in remaining if not _has_variable_head_name(rule)]
        variable_head_rules = [rule for rule in remaining if _has_variable_head_name(rule)]

        for rule in ground_head_rules:
            if predicate_name(rule.head) in settled_names:
                return HiLogModularResult(
                    False, None,
                    "rule %r has a head predicate that is already settled "
                    "(cf. Example 6.5)" % (rule,),
                    tuple(rounds),
                )

        # Nodes are the predicate names appearing ground in R that are not yet
        # settled.  (A ground name with no rules at all still becomes a node:
        # its component is settled with the empty — universally false — model,
        # exactly as in the paper's discussion after Example 6.5.)
        nodes = _ground_names_in(remaining) - settled_names
        if not nodes:
            return HiLogModularResult(
                False, None,
                "no unsettled ground predicate name remains, so no further "
                "component can be identified",
                tuple(rounds),
            )
        graph = _dependency_graph(ground_head_rules, nodes, left_to_right)
        lowest = _lowest_components(graph)
        component_rules = [
            rule for rule in ground_head_rules if predicate_name(rule.head) in lowest
        ]

        for rule in component_rules:
            for name in _body_names(rule):
                if not name.is_ground():
                    return HiLogModularResult(
                        False, None,
                        "rule %r of the lowest component has a variable in a "
                        "predicate name" % (rule,),
                        tuple(rounds),
                    )

        has_aggregates = any(rule.aggregates for rule in component_rules)
        if has_aggregates:
            try:
                component_true = evaluate_aggregate_component(
                    component_rules, settled_names, settled_true
                )
            except (StratificationError, GroundingError, EvaluationError) as error:
                return HiLogModularResult(False, None, str(error), tuple(rounds))
            component_base = set(component_true)
        else:
            component_true = None
            if strategy == "seminaive":
                # Fast path: a component that is stratified relative to the
                # settled model is locally stratified with a total
                # well-founded model, so the semi-naive least fixpoint is its
                # Figure-1 model and the checks below are implied.
                component_true = _seminaive_component(
                    component_rules, settled_true, max_atoms, max_term_depth
                )
                if component_true is not None:
                    component_base = set(component_true)
            if component_true is None:
                try:
                    component_ground = _ground_component(
                        component_rules, settled_names, settled_true, max_atoms, max_term_depth
                    )
                except GroundingError as error:
                    return HiLogModularResult(False, None, str(error), tuple(rounds))
                if not is_locally_stratified_ground(component_ground):
                    return HiLogModularResult(
                        False, None,
                        "the reduction of the lowest component %s is not locally stratified"
                        % sorted(map(repr, lowest)),
                        tuple(rounds),
                    )
                component_model = well_founded_model(component_ground)
                if not component_model.is_total():
                    return HiLogModularResult(
                        False, None,
                        "the lowest component %s has no total well-founded model"
                        % sorted(map(repr, lowest)),
                        tuple(rounds),
                    )
                component_true = set(component_model.true)
                component_base = set(component_ground.base)

        settled_true |= component_true
        base |= component_base
        settled_names |= lowest
        rounds.append(frozenset(lowest))

        rest = variable_head_rules + [
            rule for rule in ground_head_rules if predicate_name(rule.head) not in lowest
        ]
        remaining = list(hilog_reduction(rest, settled_names, settled_true))

    return HiLogModularResult(
        False, None, "the procedure did not terminate within %d rounds" % max_rounds, tuple(rounds)
    )


def is_modularly_stratified_for_hilog(program, **kwargs):
    """Definition 6.6 as a boolean test."""
    return modularly_stratified_for_hilog(program, **kwargs).is_modularly_stratified


def perfect_model_for_hilog(program, **kwargs):
    """The total well-founded model of a modularly stratified HiLog program
    (Theorem 6.1).  Raises :class:`StratificationError` otherwise.

    Pass ``strategy="seminaive"`` to evaluate stratified (sub)programs with
    the delta-driven engine of :mod:`repro.engine.seminaive` instead of
    grounding; the default ``strategy="ground"`` is the reference oracle.
    Both strategies derive the same true atoms."""
    result = modularly_stratified_for_hilog(program, **kwargs)
    if not result.is_modularly_stratified:
        raise StratificationError(result.reason or "program is not modularly stratified for HiLog")
    return result.model
