"""The paper's core contribution: negation in HiLog.

This package implements Sections 4–6 of "On Negation in HiLog":

* the HiLog well-founded and stable semantics (Section 4),
* HiLog range restriction and strong range restriction (Definitions 5.5/5.6),
* empirical checkers for domain independence and preservation under
  extensions (Section 5),
* modular stratification for HiLog — the Figure-1 procedure — and the
  resulting perfect-model evaluation, including the aggregate extension used
  by the parts-explosion program (Section 6),
* Datahilog recognition and the finiteness guarantee of Lemma 6.3,
* the magic-sets transformation and query-driven evaluation for modularly
  stratified HiLog programs (Section 6.1).
"""

from repro.core.semantics import (
    hilog_stable_models,
    hilog_well_founded_model,
    normal_well_founded_model,
    well_founded_for_hilog,
    normal_stable_models,
)
from repro.core.range_restriction import (
    classify_rule,
    is_query_range_restricted,
    is_range_restricted,
    is_strongly_range_restricted,
    rule_is_range_restricted,
    rule_is_strongly_range_restricted,
)
from repro.core.preservation import (
    PreservationReport,
    check_preservation_under_extensions,
    random_disjoint_extension,
)
from repro.core.domain_independence import (
    DomainIndependenceReport,
    check_domain_independence,
)
from repro.core.modular import (
    HiLogModularResult,
    hilog_reduction,
    modularly_stratified_for_hilog,
    perfect_model_for_hilog,
)
from repro.core.datahilog import is_datahilog, datahilog_relevant_atoms
from repro.core.magic import (
    MagicProgram,
    answer_from_store,
    magic_rewrite,
    magic_evaluate,
    answer_query,
)

__all__ = [
    "hilog_well_founded_model",
    "well_founded_for_hilog",
    "hilog_stable_models",
    "normal_well_founded_model",
    "normal_stable_models",
    "is_range_restricted",
    "is_strongly_range_restricted",
    "rule_is_range_restricted",
    "rule_is_strongly_range_restricted",
    "is_query_range_restricted",
    "classify_rule",
    "PreservationReport",
    "check_preservation_under_extensions",
    "random_disjoint_extension",
    "DomainIndependenceReport",
    "check_domain_independence",
    "HiLogModularResult",
    "modularly_stratified_for_hilog",
    "perfect_model_for_hilog",
    "hilog_reduction",
    "is_datahilog",
    "datahilog_relevant_atoms",
    "MagicProgram",
    "magic_rewrite",
    "magic_evaluate",
    "answer_query",
    "answer_from_store",
]
