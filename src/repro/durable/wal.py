"""Append-only, CRC32-framed write-ahead log of EDB updates.

Every update batch a durable :class:`~repro.db.session.DatabaseSession`
applies is logged as one **transaction**: a ``begin`` frame, an optional
``ins``/``ret`` frame carrying the asserted/retracted facts in concrete
HiLog syntax, and a ``commit`` frame once the in-memory maintenance pass
succeeded (or an ``abort`` frame when it raised and rolled back).  The
serving writer's coalesced batches arrive here as single transactions,
so group commit falls out of the existing coalescing: one fsync covers
every op merged into the batch.

Frame format (little-endian)::

    +----------------+----------------+------------------+
    | crc32(payload) | len(payload)   | payload (JSON)   |
    |   4 bytes      |   4 bytes      |   len bytes      |
    +----------------+----------------+------------------+

Records are JSON objects: ``{"t": "begin", "x": txn}``,
``{"t": "ins"|"ret", "f": [fact_text, ...]}``, ``{"t": "commit"|"abort",
"x": txn}``.  Text payloads make the log greppable and keep replay on the
session's memoized fact parser.

Durability policy (``fsync=``):

``"always"``
    fsync after every committed transaction — survives power loss at the
    cost of one fsync per batch.
``"batch"`` (default)
    fsync every ``sync_every`` committed transactions, on checkpoint and
    on close — bounded loss window, negligible steady-state overhead.
``"off"``
    never fsync (the OS flushes eventually) — for tests and bulk loads.

A crash can tear the final frame (partial ``write``) or leave a
transaction without its ``commit``.  Opening the log detects the torn
tail and **truncates at the first bad frame**; replay then applies
committed transactions only, so a dangling ``begin`` is ignored exactly
as if the batch had never run — which, observably, it hadn't.
"""

from __future__ import annotations

import json
import os
import struct

from time import perf_counter as _perf_counter
from zlib import crc32

from repro.durable.faults import fire
from repro.hilog.errors import CorruptWal
from repro.obs.metrics import get_registry

#: ``crc32(payload), len(payload)`` frame header.
_HEADER = struct.Struct("<II")

#: Refuse to believe a single frame beyond this (a corrupt length field
#: would otherwise make the scanner try to allocate gigabytes).
_MAX_FRAME = 1 << 28

WAL_NAME = "wal.log"


class CommittedBatch:
    """One committed WAL transaction, ready for replay."""

    __slots__ = ("txn", "inserts", "retracts")

    def __init__(self, txn, inserts, retracts):
        self.txn = txn
        self.inserts = inserts
        self.retracts = retracts

    def __repr__(self):
        return "CommittedBatch(txn=%d, +%d, -%d)" % (
            self.txn, len(self.inserts), len(self.retracts),
        )


def _frame(record):
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(crc32(payload) & 0xFFFFFFFF, len(payload)) + payload


def read_frames(path, strict=False):
    """Yield ``(offset, end, record)`` for every valid frame in ``path``.

    Stops at the first bad frame (short header, impossible length,
    truncated payload, CRC mismatch, undecodable JSON).  With
    ``strict=True`` the bad frame raises :class:`CorruptWal` instead of
    ending the iteration — that is the mode the corrupt-fixture tests and
    explicit integrity checks use; recovery itself is lenient because a
    torn tail is an expected crash artifact, not an error.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return
    offset, size = 0, len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            if strict:
                raise CorruptWal(
                    "truncated frame header at byte %d" % offset,
                    path=path, offset=offset,
                )
            return
        crc, length = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > _MAX_FRAME or start + length > size:
            if strict:
                raise CorruptWal(
                    "frame at byte %d claims %d payload bytes past the end"
                    % (offset, length), path=path, offset=offset,
                )
            return
        payload = data[start:start + length]
        if crc32(payload) & 0xFFFFFFFF != crc:
            if strict:
                raise CorruptWal(
                    "CRC mismatch at byte %d" % offset, path=path,
                    offset=offset,
                )
            return
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            if strict:
                raise CorruptWal(
                    "undecodable payload at byte %d" % offset, path=path,
                    offset=offset,
                )
            return
        yield offset, start + length, record
        offset = start + length


class WriteAheadLog:
    """The append side of one data directory's WAL.

    Opening scans the existing file: the torn tail (if any) is truncated
    at the first bad frame, committed transactions are collected into
    :attr:`committed` for the recovery replay, and transaction numbering
    continues past the highest id seen.  Exactly one live writer may hold
    the log — the data directory's lockfile (see
    :mod:`repro.durable.manager`) enforces that.
    """

    def __init__(self, path, fsync="batch", sync_every=64):
        if fsync not in ("always", "batch", "off"):
            raise ValueError(
                "fsync policy must be 'always', 'batch' or 'off', got %r"
                % (fsync,)
            )
        if sync_every <= 0:
            raise ValueError("sync_every must be positive")
        self.path = path
        self.policy = fsync
        self.sync_every = sync_every
        #: Committed transactions found at open, oldest first (recovery
        #: replays the tail past the snapshot's txn, then drops the list).
        self.committed = []
        #: Bytes cut from the torn tail at open (0 for a clean log).
        self.truncated_bytes = 0
        self.last_txn = 0
        self._unsynced = 0
        self._fd = None

        end = self._scan()
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        size = os.fstat(self._fd).st_size
        if size > end:
            os.ftruncate(self._fd, end)
            self.truncated_bytes = size - end
        os.lseek(self._fd, 0, os.SEEK_END)

    def _scan(self):
        """Walk the existing frames; returns the end offset of the last
        valid frame (the truncation point for a torn tail)."""
        end = 0
        pending = {}
        current = None
        for _offset, frame_end, record in read_frames(self.path):
            kind = record.get("t")
            if kind == "begin":
                current = int(record.get("x", 0))
                self.last_txn = max(self.last_txn, current)
                pending[current] = ([], [])
            elif kind in ("ins", "ret"):
                ops = pending.get(current)
                if ops is not None:
                    ops[0 if kind == "ins" else 1].extend(record.get("f", ()))
            elif kind == "commit":
                txn = int(record.get("x", 0))
                ops = pending.pop(txn, None)
                if ops is not None:
                    self.committed.append(CommittedBatch(txn, ops[0], ops[1]))
            elif kind == "abort":
                pending.pop(int(record.get("x", 0)), None)
            end = frame_end
        return end

    @property
    def closed(self):
        return self._fd is None

    def _write(self, data):
        os.write(self._fd, data)

    def begin(self, insert_texts, retract_texts):
        """Append ``begin`` + op frames for one batch; returns the txn id.
        Called *before* the in-memory apply — :meth:`commit` or
        :meth:`abort` closes the transaction afterwards."""
        if self._fd is None:
            raise CorruptWal("write-ahead log is closed", path=self.path)
        self.last_txn += 1
        txn = self.last_txn
        buffer = _frame({"t": "begin", "x": txn})
        if insert_texts:
            buffer += _frame({"t": "ins", "f": list(insert_texts)})
        if retract_texts:
            buffer += _frame({"t": "ret", "f": list(retract_texts)})
        fire("wal.pre_append")
        self._write(buffer)
        fire("wal.post_append")
        get_registry().counter(
            "repro_wal_appended", "WAL records appended", family="durable",
        ).inc(1 + bool(insert_texts) + bool(retract_texts))
        return txn

    def commit(self, txn):
        """Append the ``commit`` frame and fsync per policy.  Once this
        returns, replay will reapply the batch after a crash."""
        self._write(_frame({"t": "commit", "x": txn}))
        get_registry().counter(
            "repro_wal_appended", "WAL records appended", family="durable",
        ).inc()
        self._unsynced += 1
        fire("wal.pre_fsync")
        if self.policy == "always" or (
            self.policy == "batch" and self._unsynced >= self.sync_every
        ):
            self.sync()

    def abort(self, txn):
        """Append the ``abort`` frame (the in-memory apply failed and was
        rolled back; replay must skip the batch).  Never fsyncs — an
        aborted transaction is equally dead whether or not the abort frame
        survives."""
        if self._fd is None:
            return
        self._write(_frame({"t": "abort", "x": txn}))
        get_registry().counter(
            "repro_wal_appended", "WAL records appended", family="durable",
        ).inc()

    def sync(self):
        """fsync the log now (also the checkpoint/shutdown barrier)."""
        if self._fd is None or self.policy == "off":
            self._unsynced = 0
            return
        started = _perf_counter()
        os.fsync(self._fd)
        self._unsynced = 0
        get_registry().histogram(
            "repro_wal_fsync_seconds", "WAL fsync latency", family="durable",
        ).observe(_perf_counter() - started)

    def close(self):
        """Flush per policy and close the descriptor (idempotent)."""
        if self._fd is None:
            return
        if self.policy != "off":
            try:
                os.fsync(self._fd)
            except OSError:
                pass
        os.close(self._fd)
        self._fd = None

    def abandon(self):
        """Close the descriptor *without* syncing — the crash-simulation
        teardown used by the kill-and-recover tests."""
        if self._fd is None:
            return
        os.close(self._fd)
        self._fd = None
