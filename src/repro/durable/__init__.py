"""Durability: write-ahead logging, snapshot checkpoints, crash recovery.

The subsystem behind ``DatabaseSession(path=...)`` and
``DatabaseSession.open(path)``:

* :mod:`repro.durable.wal` — append-only CRC32-framed log of update
  batches with begin/commit/abort transaction boundaries, configurable
  fsync policy, and torn-tail truncation on open;
* :mod:`repro.durable.snapshot` — atomic (temp + fsync + rename)
  checkpoints of the materialized model, support counts, undefined
  partition and WAL position;
* :mod:`repro.durable.recovery` — newest-valid-snapshot selection (with
  fallback past corrupt ones) and WAL-tail replay through the session's
  incremental maintenance;
* :mod:`repro.durable.manager` — the per-directory orchestrator: the
  single-writer lockfile, the program file, checkpoint scheduling;
* :mod:`repro.durable.faults` — the crash-point injection registry
  driving the kill-and-recover property tests and the CI crash matrix.

See the README's "Durability" section for the file formats and the
fsync-policy trade-offs.
"""

from repro.durable.faults import FAULT_POINTS, CrashPoint, arm, crash_at, disarm, fire
from repro.durable.manager import DirectoryLock, DurabilityManager, is_initialized
from repro.durable.recovery import load_latest_state, replay
from repro.durable.snapshot import (
    SnapshotState,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    write_snapshot,
)
from repro.durable.wal import CommittedBatch, WriteAheadLog, read_frames

__all__ = [
    "FAULT_POINTS",
    "CrashPoint",
    "arm",
    "crash_at",
    "disarm",
    "fire",
    "DirectoryLock",
    "DurabilityManager",
    "is_initialized",
    "load_latest_state",
    "replay",
    "SnapshotState",
    "list_snapshots",
    "load_snapshot",
    "prune_snapshots",
    "write_snapshot",
    "CommittedBatch",
    "WriteAheadLog",
    "read_frames",
]
