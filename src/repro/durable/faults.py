"""Crash-point injection for the durability subsystem.

The WAL, snapshot and recovery code paths call :func:`fire` at every
named point where a real process could die with the disk in a halfway
state — immediately before/after a WAL append, before an fsync, in the
middle of a snapshot write, around the snapshot rename, and between
replayed transactions.  Tests *arm* a point (:func:`arm` or the
:func:`crash_at` context manager) and the next time execution reaches it
a :class:`CrashPoint` is raised, simulating the kill.

Whatever bytes were written before the crash point stay on disk — which
is exactly the state a recovery run must cope with.  The kill-and-recover
property test (``tests/durable/test_faults_property.py``) drives random
op streams into a durable session, crashes it at every registered point,
reopens the directory, and checks the recovered true+undefined partitions
against a never-crashed oracle.

:class:`CrashPoint` deliberately subclasses :class:`BaseException`: the
session's disaster-recovery paths catch :class:`Exception` subclasses to
roll back or rebuild, and a simulated kill must tear straight through
them the way a real ``SIGKILL`` would.
"""

from __future__ import annotations

import contextlib

#: Every registered crash point, in rough execution order.  The CI crash
#: matrix iterates this tuple; adding a new ``fire()`` site means adding
#: its name here so the matrix picks it up.
FAULT_POINTS = (
    "wal.pre_append",
    "wal.post_append",
    "wal.pre_fsync",
    "snapshot.mid_write",
    "snapshot.pre_rename",
    "snapshot.post_rename",
    "recovery.mid_replay",
)

#: point name -> remaining passes before it fires (0 = fire on next hit).
_armed = {}


class CrashPoint(BaseException):
    """A simulated process kill at a named fault point."""

    def __init__(self, point):
        super().__init__("simulated crash at fault point %r" % (point,))
        self.point = point


def arm(point, skip=0):
    """Arm ``point``: the ``skip + 1``-th time execution reaches it, a
    :class:`CrashPoint` is raised (and the point disarms itself)."""
    if point not in FAULT_POINTS:
        raise ValueError("unknown fault point %r (see FAULT_POINTS)" % (point,))
    if skip < 0:
        raise ValueError("skip must be >= 0")
    _armed[point] = skip


def disarm(point=None):
    """Disarm one point (or every point when ``point`` is ``None``)."""
    if point is None:
        _armed.clear()
    else:
        _armed.pop(point, None)


def armed():
    """The currently armed points as a ``{point: remaining_skips}`` dict."""
    return dict(_armed)


def fire(point):
    """Crash-point hook: raise :class:`CrashPoint` when ``point`` is armed
    and its skip count is exhausted.  Near-free when nothing is armed."""
    if not _armed:
        return
    remaining = _armed.get(point)
    if remaining is None:
        return
    if remaining <= 0:
        del _armed[point]
        raise CrashPoint(point)
    _armed[point] = remaining - 1


@contextlib.contextmanager
def crash_at(point, skip=0):
    """Arm ``point`` for the duration of the block; always disarms on exit
    (whether or not the crash fired)."""
    arm(point, skip=skip)
    try:
        yield
    finally:
        disarm(point)
