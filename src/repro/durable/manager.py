"""Per-data-directory durability orchestration.

A :class:`DurabilityManager` owns one data directory on behalf of exactly
one :class:`~repro.db.session.DatabaseSession`:

* the **single-writer lockfile** (``lock``) — an OS-level ``flock`` held
  for the session's lifetime, so a second opener fails fast with
  :class:`~repro.hilog.errors.LockHeld` instead of interleaving WAL
  appends, and a killed process's lock evaporates with it (no stale-lock
  dance on restart);
* the **program file** (``program.hilog``) — the session's program text,
  written once at creation so :meth:`DatabaseSession.open` can rebuild
  the rules (and, when every snapshot is lost, the seed facts) without
  the caller re-supplying them;
* the **write-ahead log** (``wal.log``, :mod:`repro.durable.wal`);
* **snapshot checkpoints** (``snap-*.snap``, :mod:`repro.durable.snapshot`),
  written on demand, every ``checkpoint_every`` logged transactions, and
  at clean shutdown.

The manager is deliberately dumb about session semantics: the session
calls :meth:`log_begin` / :meth:`log_commit` / :meth:`log_abort` around
its own ``_apply``, and hands the manager fully-resolved state to
checkpoint.  Layout of a data directory::

    datadir/
        lock            single-writer flock target
        program.hilog   program text (rules + seed facts)
        wal.log         CRC32-framed write-ahead log
        snap-<txn>.snap newest-two snapshot checkpoints
"""

from __future__ import annotations

import os

from repro.durable import snapshot as snapshot_io
from repro.durable.wal import WAL_NAME, WriteAheadLog
from repro.hilog.errors import DurabilityError, LockHeld
from repro.hilog.pretty import format_term
from repro.obs.metrics import get_registry

try:
    import fcntl
except ImportError:  # non-POSIX fallback below
    fcntl = None

PROGRAM_NAME = "program.hilog"
LOCK_NAME = "lock"

#: Snapshots retained per directory: the newest, plus one fallback in
#: case the newest is torn by a crash mid-rename or corrupted on disk.
KEEP_SNAPSHOTS = 2


class DirectoryLock:
    """The data directory's single-writer lock.

    POSIX: a non-blocking ``flock`` on ``<dir>/lock`` — held until
    release, dropped automatically by the OS when the process dies, so a
    crashed writer never wedges the directory.  Without :mod:`fcntl`
    (Windows), falls back to an ``O_EXCL`` pidfile with liveness probing.
    """

    def __init__(self, directory):
        self.path = os.path.join(directory, LOCK_NAME)
        self._handle = None
        if fcntl is not None:
            handle = open(self.path, "a+")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                holder = self._read_holder(handle)
                handle.close()
                raise LockHeld(
                    "data directory %s is locked by a live session%s"
                    % (directory,
                       " (pid %s)" % holder if holder else ""),
                    path=self.path, holder=holder,
                )
            handle.seek(0)
            handle.truncate()
            handle.write("%d\n" % os.getpid())
            handle.flush()
            self._handle = handle
        else:
            self._acquire_pidfile(directory)

    @staticmethod
    def _read_holder(handle):
        try:
            handle.seek(0)
            return int(handle.read().strip() or 0) or None
        except (OSError, ValueError):
            return None

    def _acquire_pidfile(self, directory):
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = None
                try:
                    with open(self.path) as handle:
                        holder = int(handle.read().strip() or 0) or None
                except (OSError, ValueError):
                    pass
                if holder is not None and not _pid_alive(holder):
                    try:
                        os.unlink(self.path)  # stale: holder is dead
                    except OSError:
                        pass
                    continue
                raise LockHeld(
                    "data directory %s is locked%s"
                    % (directory, " (pid %s)" % holder if holder else ""),
                    path=self.path, holder=holder,
                )
            os.write(fd, b"%d\n" % os.getpid())
            os.close(fd)
            self._handle = self.path
            return

    def release(self):
        """Drop the lock (idempotent)."""
        handle, self._handle = self._handle, None
        if handle is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            handle.close()
        else:
            try:
                os.unlink(handle)
            except OSError:
                pass


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass
    return True


def is_initialized(directory):
    """Whether ``directory`` holds a durable session's state."""
    return os.path.isfile(os.path.join(directory, PROGRAM_NAME))


class DurabilityManager:
    """WAL + snapshots + lockfile for one session's data directory."""

    def __init__(self, directory, fsync="batch", checkpoint_every=None,
                 sync_every=64):
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be None or positive")
        directory = os.path.abspath(os.path.expanduser(directory))
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.fsync_policy = fsync
        self.checkpoint_every = checkpoint_every
        self.sync_every = sync_every
        self.wal = None
        #: True while recovery replays the WAL tail — the session's
        #: ``_apply`` must not re-log replayed batches.
        self.suspended = False
        self.records_since_checkpoint = 0
        #: Recovery provenance, surfaced through ``session.stats()``.
        self.recovery = {
            "snapshot_txn": None,
            "replayed_txns": 0,
            "replayed_facts": 0,
            "truncated_bytes": 0,
            "corrupt_snapshots": (),
        }
        self.closed = False
        self.lock = DirectoryLock(directory)

    # -- directory state -----------------------------------------------------

    def initialized(self):
        return is_initialized(self.directory)

    @property
    def program_path(self):
        return os.path.join(self.directory, PROGRAM_NAME)

    def write_program(self, text):
        """Persist the program text once, at directory creation, through
        the same atomic temp + fsync + rename discipline as snapshots."""
        tmp = self.program_path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.program_path)

    def read_program(self):
        try:
            with open(self.program_path, "r") as handle:
                return handle.read()
        except OSError as error:
            raise DurabilityError(
                "cannot read %s: %s" % (self.program_path, error)
            )

    # -- WAL -----------------------------------------------------------------

    def open_wal(self):
        """Open (and torn-tail-truncate) the WAL for appending; committed
        transactions found in the file stay on ``wal.committed`` for the
        recovery replay."""
        self.wal = WriteAheadLog(
            os.path.join(self.directory, WAL_NAME),
            fsync=self.fsync_policy, sync_every=self.sync_every,
        )
        if self.wal.truncated_bytes:
            self.recovery["truncated_bytes"] = self.wal.truncated_bytes
            get_registry().counter(
                "repro_recovery_truncated_bytes",
                "Torn-tail bytes truncated from the WAL at open",
                family="durable",
            ).inc(self.wal.truncated_bytes)
        return self.wal

    @property
    def active(self):
        """Whether update batches should be logged right now."""
        return self.wal is not None and not self.wal.closed \
            and not self.suspended

    def log_begin(self, inserts, retracts):
        """Log a batch's ``begin`` + op frames (atoms rendered in concrete
        syntax); returns the WAL transaction id."""
        return self.wal.begin(
            [format_term(atom) for atom in inserts],
            [format_term(atom) for atom in retracts],
        )

    def log_commit(self, txn):
        self.wal.commit(txn)
        self.records_since_checkpoint += 1

    def log_abort(self, txn):
        self.wal.abort(txn)

    def should_checkpoint(self):
        return (
            self.checkpoint_every is not None
            and self.records_since_checkpoint >= self.checkpoint_every
        )

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(self, *, rules_text, mode, edb, store, undefined,
                   supports=None):
        """Write a snapshot current through the WAL's last transaction,
        prune old snapshots, and fsync the WAL (a checkpoint is a
        durability barrier whatever the fsync policy)."""
        txn = self.wal.last_txn if self.wal is not None else 0
        path = snapshot_io.write_snapshot(
            self.directory, rules_text=rules_text, mode=mode, txn=txn,
            edb=edb, store=store, undefined=undefined, supports=supports,
        )
        snapshot_io.prune_snapshots(self.directory, keep=KEEP_SNAPSHOTS)
        if self.wal is not None and not self.wal.closed:
            self.wal.sync()
        self.records_since_checkpoint = 0
        return path

    def stats(self):
        info = {
            "directory": self.directory,
            "fsync": self.fsync_policy,
            "checkpoint_every": self.checkpoint_every,
            "records_since_checkpoint": self.records_since_checkpoint,
            "snapshots": len(snapshot_io.list_snapshots(self.directory)),
            "wal_last_txn": self.wal.last_txn if self.wal is not None else 0,
            "closed": self.closed,
        }
        info.update(self.recovery)
        return info

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Clean shutdown: close the WAL (fsyncing per policy) and drop
        the lock.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        if self.wal is not None:
            self.wal.close()
        self.lock.release()

    def abandon(self):
        """Simulate a process kill: drop the descriptors without syncing
        and release the lock the way process death would.  The test hook
        behind the kill-and-recover suite."""
        if self.closed:
            return
        self.closed = True
        if self.wal is not None:
            self.wal.abandon()
        self.lock.release()
