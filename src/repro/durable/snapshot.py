"""Atomic snapshot checkpoints of a session's materialized state.

A snapshot captures everything recovery needs to skip rematerialization:
the program's rules, the extensional database, the materialized store
(grouped by relation, so reload rebuilds the per-relation fact sets
without re-deriving anything), the counting strata's per-fact support
counts, the well-founded undefined partition, and the WAL transaction the
snapshot is current through.

On-disk layout::

    +-----------+----------------+--------------+------------------+
    | magic (8) | crc32(body) (4)| len(body) (8)| body (marshal)   |
    +-----------+----------------+--------------+------------------+

The body is a :mod:`marshal`-serialized dict whose terms live in a
**post-order term pool**: entry *i* is a symbol name (``str``), a number
(``int``/``float``) or an application ``[name_id, arg_id, ...]`` whose
referents all precede it.  Decoding is a single sequential pass through
the hash-consing :class:`~repro.hilog.terms.Sym`/``Num``/``App``
constructors — every reloaded atom is the canonical interned object, as
the identity-based store requires — and loading a chain-200 closure
snapshot is several times faster than re-deriving the 20k facts.

Writes are atomic: the body lands in a ``*.tmp`` sibling, is fsynced,
and is :func:`os.replace`-d into place; a crash at any point leaves
either the old snapshot set or the new one, never a half-written file
that validates.  Readers (:func:`load_snapshot`) verify magic, length
and CRC and raise :class:`~repro.hilog.errors.CorruptSnapshot` on any
mismatch — recovery then falls back to the next-newest snapshot.

Snapshots are written from the single writer thread; in the serving path
the source store is a pinned frozen epoch, so checkpointing never blocks
concurrent readers (they answer from their own pinned epochs throughout).
"""

from __future__ import annotations

import marshal
import os
import re
import struct

from time import perf_counter as _perf_counter
from zlib import crc32

from repro.durable.faults import fire
from repro.engine.seminaive.relation import (
    Relation,
    RelationStore,
    predicate_indicator,
)
from repro.hilog.errors import CorruptSnapshot
from repro.hilog.terms import App, Num, Sym
from repro.obs.metrics import get_registry

MAGIC = b"RSNAP1\0\n"
_TRAILER = struct.Struct("<IQ")
_FORMAT = 1

_SNAP_RE = re.compile(r"^snap-(\d{16})\.snap$")


class SnapshotState:
    """A decoded snapshot: everything a session restore needs."""

    __slots__ = ("txn", "mode", "rules_text", "edb", "store", "undefined",
                 "path")

    def __init__(self, txn, mode, rules_text, edb, store, undefined,
                 path=None):
        self.txn = txn
        self.mode = mode
        self.rules_text = rules_text
        self.edb = edb
        self.store = store
        self.undefined = undefined
        self.path = path


def snapshot_path(directory, txn):
    return os.path.join(directory, "snap-%016d.snap" % txn)


def list_snapshots(directory):
    """``(txn, path)`` pairs of every snapshot in ``directory``, newest
    first."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _SNAP_RE.match(name)
        if match is not None:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def prune_snapshots(directory, keep=2):
    """Drop all but the ``keep`` newest snapshots, plus stray ``*.tmp``
    leftovers from crashed checkpoint attempts.  Returns removed paths."""
    removed = []
    for _txn, path in list_snapshots(directory)[keep:]:
        try:
            os.unlink(path)
            removed.append(path)
        except OSError:
            pass
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return removed
    for name in names:
        if name.endswith(".tmp"):
            path = os.path.join(directory, name)
            try:
                os.unlink(path)
                removed.append(path)
            except OSError:
                pass
    return removed


# -- encoding ----------------------------------------------------------------

def _term_id(term, index, pool):
    """Pool id of ``term``, appending its subterms post-order as needed."""
    known = index.get(term)
    if known is not None:
        return known
    stack = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node in index:
            continue
        if isinstance(node, App):
            if not expanded:
                stack.append((node, True))
                stack.append((node.name, False))
                for arg in node.args:
                    stack.append((arg, False))
            else:
                entry = [index[node.name]]
                entry.extend(index[arg] for arg in node.args)
                index[node] = len(pool)
                pool.append(entry)
        elif isinstance(node, Num):
            index[node] = len(pool)
            pool.append(node.value)
        else:  # Sym (ground atoms never contain Var)
            index[node] = len(pool)
            pool.append(node.name)
    return index[term]


def _relation_groups(store):
    """``indicator -> [atoms]`` for any store shape: the fast path reads a
    :class:`RelationStore`'s own relations; epoch overlays (and any other
    iterable store) group through :func:`predicate_indicator`."""
    if isinstance(store, RelationStore):
        return {indicator: list(relation.facts)
                for indicator, relation in store._relations.items()
                if relation.facts}
    groups = {}
    for atom in store:
        groups.setdefault(predicate_indicator(atom), []).append(atom)
    return groups


def encode_snapshot(*, rules_text, mode, txn, edb, store, undefined,
                    supports=None):
    """The marshal-ready body dict for one checkpoint."""
    index = {}
    pool = []
    rels = []
    for indicator, atoms in _relation_groups(store).items():
        name_id = _term_id(indicator[0], index, pool)
        rels.append((name_id, indicator[1],
                     [_term_id(atom, index, pool) for atom in atoms]))
    if supports is None:
        supports = store._supports if isinstance(store, RelationStore) else {}
    sup = [(index[atom], count) for atom, count in supports.items()
           if count != 1 and atom in index]
    body = {
        "format": _FORMAT,
        "txn": txn,
        "mode": mode,
        "rules": rules_text,
        "pool": pool,
        "rels": rels,
        "edb": [_term_id(atom, index, pool) for atom in edb],
        "sup": sup,
        "undef": [_term_id(atom, index, pool) for atom in undefined],
    }
    return body


def write_snapshot(directory, *, rules_text, mode, txn, edb, store,
                   undefined, supports=None):
    """Atomically write one checkpoint; returns its path.

    Crash points: ``snapshot.mid_write`` (tmp file half-written, never
    renamed — recovery ignores it), ``snapshot.pre_rename`` (tmp complete
    but the old snapshot set still rules), ``snapshot.post_rename`` (the
    new snapshot is live; only the directory-entry fsync was lost).
    """
    started = _perf_counter()
    body = marshal.dumps(encode_snapshot(
        rules_text=rules_text, mode=mode, txn=txn, edb=edb, store=store,
        undefined=undefined, supports=supports,
    ))
    blob = MAGIC + _TRAILER.pack(crc32(body) & 0xFFFFFFFF, len(body)) + body
    final = snapshot_path(directory, txn)
    tmp = final + ".tmp"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        half = len(blob) // 2
        os.write(fd, blob[:half])
        fire("snapshot.mid_write")
        os.write(fd, blob[half:])
        os.fsync(fd)
    finally:
        os.close(fd)
    fire("snapshot.pre_rename")
    os.replace(tmp, final)
    fire("snapshot.post_rename")
    _fsync_directory(directory)
    registry = get_registry()
    registry.counter(
        "repro_checkpoints", "Snapshot checkpoints written", family="durable",
    ).inc()
    registry.histogram(
        "repro_checkpoint_seconds", "Checkpoint write latency",
        family="durable",
    ).observe(_perf_counter() - started)
    return final


def _fsync_directory(directory):
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# -- decoding ----------------------------------------------------------------

def load_snapshot(path):
    """Decode one snapshot file into a :class:`SnapshotState`.

    Raises :class:`CorruptSnapshot` on any validation failure — short or
    mangled header, CRC mismatch, undecodable body, dangling pool ids.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise CorruptSnapshot("unreadable snapshot: %s" % error, path=path)
    head = len(MAGIC) + _TRAILER.size
    if len(data) < head or not data.startswith(MAGIC):
        raise CorruptSnapshot("bad snapshot magic/header", path=path)
    crc, length = _TRAILER.unpack_from(data, len(MAGIC))
    body = data[head:]
    if len(body) != length:
        raise CorruptSnapshot(
            "snapshot body is %d bytes, header claims %d"
            % (len(body), length), path=path,
        )
    if crc32(body) & 0xFFFFFFFF != crc:
        raise CorruptSnapshot("snapshot CRC mismatch", path=path)
    try:
        payload = marshal.loads(body)
        return _decode(payload, path)
    except CorruptSnapshot:
        raise
    except Exception as error:
        raise CorruptSnapshot(
            "undecodable snapshot body: %s: %s"
            % (type(error).__name__, error), path=path,
        )


def _decode(payload, path):
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise CorruptSnapshot(
            "unsupported snapshot format %r" % (
                payload.get("format") if isinstance(payload, dict) else None,
            ), path=path,
        )
    terms = []
    append = terms.append
    for entry in payload["pool"]:
        kind = type(entry)
        if kind is str:
            append(Sym(entry))
        elif kind is list:
            append(App(terms[entry[0]],
                       tuple(terms[i] for i in entry[1:])))
        else:
            append(Num(entry))

    store = RelationStore.__new__(RelationStore)
    members = set()
    relations = {}
    by_arity = {}
    for name_id, arity, ids in payload["rels"]:
        facts = [terms[i] for i in ids]
        relation = Relation((terms[name_id], arity))
        relation.facts = dict.fromkeys(facts)
        relations[relation.indicator] = relation
        by_arity.setdefault(arity, []).append(relation)
        members.update(facts)
    supports = dict.fromkeys(members, 1)
    for term_id, count in payload["sup"]:
        supports[terms[term_id]] = count
    store._relations = relations
    store._by_arity = by_arity
    store._members = members
    store._count = len(members)
    store._supports = supports
    store._frozen = False
    store.refs = 0

    return SnapshotState(
        txn=payload["txn"],
        mode=payload["mode"],
        rules_text=payload["rules"],
        edb=set(terms[i] for i in payload["edb"]),
        store=store,
        undefined=frozenset(terms[i] for i in payload["undef"]),
        path=path,
    )
