"""Crash recovery: newest valid snapshot + WAL-tail replay.

Recovery is redo-only and runs entirely through machinery that already
exists:

1. :func:`load_latest_state` walks the directory's snapshots newest
   first and returns the first one that validates, **falling back past
   corrupt ones** (each casualty is counted in
   ``repro_recovery_corrupt_snapshots`` and reported in the recovery
   details).  No valid snapshot at all degrades gracefully: the session
   rematerializes from the program file and replays the *whole* WAL.
2. Opening the WAL truncates any torn tail at the first bad frame
   (``repro_recovery_truncated_bytes``).
3. :func:`replay` feeds every committed WAL transaction newer than the
   snapshot through ``DatabaseSession._apply`` — the same counting/DRed
   maintenance that produced the state in the first place, which is
   deterministic over an update stream, so the replayed model is the
   model (``repro_recovery_replayed_records``).

Uncommitted transactions (a ``begin`` whose ``commit`` never made it to
disk — the process died mid-apply or mid-append) are skipped: observably
the batch never happened, its caller was never acknowledged, and the
recovered state is exactly the pre-batch state.  `DatabaseSession.open`
drives these steps and accepts ``verify=True`` to finish with a full
:meth:`~repro.db.session.DatabaseSession.check` against a from-scratch
recomputation.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter

from repro.durable.faults import fire
from repro.durable.snapshot import list_snapshots, load_snapshot
from repro.hilog.errors import CorruptSnapshot
from repro.hilog.terms import intern_generation
from repro.obs.metrics import get_registry


def load_latest_state(directory):
    """The newest snapshot that validates, or ``None``.

    Returns ``(state, corrupt)`` where ``corrupt`` lists a short
    description of every newer snapshot that failed validation and was
    skipped."""
    corrupt = []
    registry = get_registry()
    for _txn, path in list_snapshots(directory):
        try:
            return load_snapshot(path), corrupt
        except CorruptSnapshot as error:
            corrupt.append(str(error))
            registry.counter(
                "repro_recovery_corrupt_snapshots",
                "Snapshots skipped as corrupt during recovery",
                family="durable",
            ).inc()
    return None, corrupt


def replay(session, batches):
    """Redo committed WAL ``batches`` (oldest first) through the
    session's own maintenance machinery.  Fires the
    ``recovery.mid_replay`` crash point between transactions; a crash
    there leaves a prefix applied in memory only — the next recovery
    simply replays the full tail again.  Returns ``(txns, facts)``
    replayed."""
    started = _perf_counter()
    txns = facts = 0
    for batch in batches:
        fire("recovery.mid_replay")
        with intern_generation():
            session._apply(
                session._coerce_facts(list(batch.inserts)),
                session._coerce_facts(list(batch.retracts)),
            )
        txns += 1
        facts += len(batch.inserts) + len(batch.retracts)
    registry = get_registry()
    registry.counter(
        "repro_recovery_replayed_records",
        "Committed WAL transactions replayed during recovery",
        family="durable",
    ).inc(txns)
    registry.histogram(
        "repro_recovery_seconds", "Recovery replay latency",
        family="durable",
    ).observe(_perf_counter() - started)
    return txns, facts
