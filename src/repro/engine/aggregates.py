"""Aggregate subgoal evaluation.

Section 6 of the paper extends modular stratification to aggregation and
illustrates it with the parts-explosion HiLog program, whose last rule is::

    contains(Mach, X, Y, N) :- N = sum(P : in(Mach, X, Y, _, P)).

An aggregate subgoal ``Result = op(Value : Condition)`` is evaluated against
a set of ground atoms (the already-computed extension of the condition's
predicate): the condition is matched in all possible ways, matches are
grouped by the bindings of the *group variables* (the condition's variables
that also occur elsewhere in the rule), and ``op`` is folded over the value
term of each group.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.hilog.errors import EvaluationError
from repro.hilog.program import AggregateSpec
from repro.hilog.subst import Substitution
from repro.hilog.terms import Num, Term, Var
from repro.hilog.unify import match
from repro.engine.builtins import evaluate_arithmetic, is_arithmetic_term


_FOLDS = {
    "sum": lambda values: sum(values),
    "count": lambda values: len(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
}


def group_variables(spec, rule):
    """The grouping variables of an aggregate in the context of its rule.

    These are the variables of the aggregate condition that also occur in the
    rule head, in another body literal, or in another aggregate — excluding
    the aggregated value variable itself.  For the parts-explosion rule this
    yields ``{Mach, X, Y}`` exactly as the paper describes.
    """
    condition_vars = spec.condition.variables()
    elsewhere = set(rule.head.variables())
    for literal in rule.body:
        elsewhere |= literal.variables()
    for other in rule.aggregates:
        if other is not spec:
            elsewhere |= other.variables()
    elsewhere |= spec.result.variables()
    value_vars = spec.value.variables()
    return (condition_vars & elsewhere) - value_vars


def evaluate_aggregate(spec, subst, atoms, group_vars=None):
    """Evaluate an aggregate subgoal under a partial substitution.

    Args:
        spec: the :class:`AggregateSpec`.
        subst: substitution binding (at least) the grouping variables that
            have been fixed by the rest of the rule body.
        atoms: iterable of ground atoms forming the extension the condition
            is matched against.
        group_vars: grouping variables (see :func:`group_variables`);
            variables already bound by ``subst`` define a single group.

    Returns a list of substitutions, each extending ``subst`` with bindings
    for the unbound grouping variables and with ``spec.result`` bound to the
    aggregate value of its group.  Groups are only produced for bindings with
    at least one match (the paper's aggregate is undefined on empty groups).
    """
    if group_vars is None:
        group_vars = spec.condition.variables() - spec.value.variables()
    group_vars = sorted(set(group_vars), key=lambda v: v.name)

    condition = subst.apply(spec.condition)
    groups = {}
    for atom in atoms:
        binding = match(condition, atom)
        if binding is None:
            continue
        combined = subst.compose(binding)
        key = tuple(combined.apply(v) for v in group_vars)
        if any(not part.is_ground() for part in key):
            raise EvaluationError(
                "aggregate grouping variables not ground after matching %r" % (atom,)
            )
        value_term = combined.apply(spec.value)
        value = _as_number(value_term)
        groups.setdefault(key, []).append(value)

    fold = _FOLDS[spec.op]
    results = []
    for key, values in sorted(groups.items(), key=lambda item: repr(item[0])):
        extended = subst
        consistent = True
        for variable, value in zip(group_vars, key):
            current = extended.apply(variable)
            if isinstance(current, Var):
                extended = extended.bind(current, value)
            elif current != value:
                consistent = False
                break
        if not consistent:
            continue
        aggregate_value = Num(fold(values))
        result_term = extended.apply(spec.result)
        if isinstance(result_term, Var):
            extended = extended.bind(result_term, aggregate_value)
        elif result_term != aggregate_value:
            continue
        results.append(extended)
    return results


def _as_number(term):
    """Coerce the aggregated value term to an integer."""
    if isinstance(term, Num):
        return term.value
    if is_arithmetic_term(term):
        return evaluate_arithmetic(term)
    raise EvaluationError("aggregated value %r is not numeric" % (term,))
