"""Arithmetic and comparison builtins.

Builtins let the reproduction run the paper's parts-explosion program, whose
second rule multiplies part counts (``N = P * M``).  The supported builtin
literals are ``=``, ``\\=``, ``<``, ``>``, ``=<``, ``>=``, ``=:=``, ``=\\=``
and ``is``; arithmetic expressions are terms built from ``+ - * / mod min
max`` over integer literals.

Builtins are evaluated either on fully ground atoms
(:func:`evaluate_ground_builtin`) or in "solve" mode during grounding
(:func:`solve_builtin`), where ``X is E`` / ``X = E`` with an unbound
left-hand side binds ``X``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hilog.errors import EvaluationError
from repro.hilog.program import ARITHMETIC_FUNCTORS, BUILTIN_PREDICATES
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Num, Sym, Term, Var, predicate_name


def is_builtin_atom(atom):
    """True when the atom's predicate name is one of the builtin predicates."""
    name = predicate_name(atom)
    return isinstance(name, Sym) and not isinstance(name, Num) and name.name in BUILTIN_PREDICATES


def is_arithmetic_term(term):
    """True when ``term`` is a ground arithmetic expression over integers."""
    if isinstance(term, Num):
        return True
    if isinstance(term, App) and isinstance(term.name, Sym) and term.name.name in ARITHMETIC_FUNCTORS:
        return all(is_arithmetic_term(arg) for arg in term.args)
    return False


def evaluate_arithmetic(term):
    """Evaluate a ground arithmetic expression to an ``int``.

    Raises :class:`EvaluationError` when the term is not a valid expression.
    """
    if isinstance(term, Num):
        return term.value
    if isinstance(term, App) and isinstance(term.name, Sym):
        op = term.name.name
        args = [evaluate_arithmetic(arg) for arg in term.args]
        if op == "+" and len(args) == 2:
            return args[0] + args[1]
        if op == "-" and len(args) == 2:
            return args[0] - args[1]
        if op == "-" and len(args) == 1:
            return -args[0]
        if op == "*" and len(args) == 2:
            return args[0] * args[1]
        if op == "/" and len(args) == 2:
            if args[1] == 0:
                raise EvaluationError("division by zero in %r" % (term,))
            return args[0] // args[1]
        if op == "mod" and len(args) == 2:
            if args[1] == 0:
                raise EvaluationError("mod by zero in %r" % (term,))
            return args[0] % args[1]
        if op == "min" and len(args) == 2:
            return min(args)
        if op == "max" and len(args) == 2:
            return max(args)
    raise EvaluationError("not an arithmetic expression: %r" % (term,))


def _comparison(op, left, right):
    if op in ("<",):
        return left < right
    if op in (">",):
        return left > right
    if op in ("=<",):
        return left <= right
    if op in (">=",):
        return left >= right
    if op in ("=:=",):
        return left == right
    if op in ("=\\=",):
        return left != right
    raise EvaluationError("unknown comparison operator %r" % (op,))


def evaluate_ground_builtin(atom):
    """Evaluate a fully ground builtin atom to True or False."""
    if not isinstance(atom, App) or not isinstance(atom.name, Sym) or len(atom.args) != 2:
        raise EvaluationError("malformed builtin atom: %r" % (atom,))
    op = atom.name.name
    left, right = atom.args
    if op == "=":
        if is_arithmetic_term(left) and is_arithmetic_term(right):
            return evaluate_arithmetic(left) == evaluate_arithmetic(right)
        return left == right
    if op == "\\=":
        if is_arithmetic_term(left) and is_arithmetic_term(right):
            return evaluate_arithmetic(left) != evaluate_arithmetic(right)
        return left != right
    if op == "is":
        if not is_arithmetic_term(right):
            raise EvaluationError("right-hand side of 'is' is not arithmetic: %r" % (right,))
        return is_arithmetic_term(left) and evaluate_arithmetic(left) == evaluate_arithmetic(right)
    # Pure comparisons require numeric operands.
    if not (is_arithmetic_term(left) and is_arithmetic_term(right)):
        raise EvaluationError("comparison on non-arithmetic terms: %r" % (atom,))
    return _comparison(op, evaluate_arithmetic(left), evaluate_arithmetic(right))


def solve_builtin(atom, subst):
    """Solve a builtin atom under a partial substitution.

    Returns a list of extending substitutions (empty when the builtin fails,
    a singleton when it succeeds).  Binding is supported for ``X is E`` and
    ``X = T`` with an unbound variable on the left; all other builtins
    require both sides to be ground after applying ``subst``.

    Raises :class:`EvaluationError` when the builtin can be neither evaluated
    nor solved (e.g. a comparison over unbound variables), which corresponds
    to floundering.
    """
    applied = subst.apply(atom)
    if not isinstance(applied, App) or len(applied.args) != 2:
        raise EvaluationError("malformed builtin atom: %r" % (applied,))
    op = applied.name.name if isinstance(applied.name, Sym) else None
    left, right = applied.args

    if op in ("is", "=") and isinstance(left, Var):
        if op == "is":
            if not is_arithmetic_term(right):
                raise EvaluationError("'is' needs a ground arithmetic right-hand side: %r" % (right,))
            value = Num(evaluate_arithmetic(right))
            return [subst.bind(left, value)]
        # '=': bind to the evaluated number when arithmetic, else to the term.
        if is_arithmetic_term(right):
            return [subst.bind(left, Num(evaluate_arithmetic(right)))]
        if right.is_ground():
            return [subst.bind(left, right)]
        raise EvaluationError("cannot solve %r: right-hand side not ground" % (applied,))

    if op == "=" and isinstance(right, Var) and left.is_ground():
        if is_arithmetic_term(left):
            return [subst.bind(right, Num(evaluate_arithmetic(left)))]
        return [subst.bind(right, left)]

    if not applied.is_ground():
        raise EvaluationError("builtin %r is not ground and cannot bind" % (applied,))
    return [subst] if evaluate_ground_builtin(applied) else []
