"""Ground evaluation engine.

This package contains the machinery shared by the normal-program baselines
and the HiLog semantics of the paper:

* three-valued Herbrand interpretations with the (conservative) extension
  relations of Definitions 2.3/2.4,
* grounders (exhaustive over a finite universe fragment, and relevance
  driven),
* the ``T_P`` / ``U_P`` / ``W_P`` operators of Definition 3.5 and the
  well-founded model computed either by direct ``W_P`` iteration or by the
  alternating Gelfond–Lifschitz fixpoint,
* stable models as two-valued fixpoints of ``W_P`` (Definition 3.6),
* arithmetic/comparison builtins and aggregate subgoals,
* the semi-naive evaluation subsystem (:mod:`repro.engine.seminaive`):
  indexed relation stores (with deletion and support counts), SIPS-ordered
  join plans and a delta-driven stratum-by-stratum fixpoint that evaluates
  range-restricted programs without materializing a ground program and can
  resume a settled stratum from an injected delta — the primitive the
  incremental session layer (:mod:`repro.db`) maintains models with.
"""

from repro.engine.interpretation import (
    Interpretation,
    conservatively_extends,
    extends,
    restrict_to_symbols,
)
from repro.engine.grounding import (
    GroundProgram,
    GroundRule,
    ground_over_universe,
    instantiate_rule,
    relevant_ground_program,
)
from repro.engine.fixpoint import least_model, least_model_with_blocked
from repro.engine.wellfounded import (
    WellFoundedResult,
    greatest_unfounded_set,
    tp_operator,
    well_founded_model,
    wp_operator,
)
from repro.engine.stable import stable_models, is_stable_model
from repro.engine.builtins import evaluate_ground_builtin, is_arithmetic_term, solve_builtin
from repro.engine.aggregates import evaluate_aggregate
from repro.engine.seminaive import (
    LayeredStore,
    PlanSources,
    RelationStore,
    SeminaiveResult,
    SeminaiveUnsupported,
    SeminaiveWellFoundedResult,
    Stratification,
    StratumPlan,
    compile_stratum,
    evaluate_stratum,
    run_plan,
    seminaive_evaluate,
    seminaive_perfect_model,
    seminaive_well_founded,
    seminaive_well_founded_model,
    stratify_program,
)

__all__ = [
    "Interpretation",
    "conservatively_extends",
    "extends",
    "restrict_to_symbols",
    "GroundRule",
    "GroundProgram",
    "ground_over_universe",
    "relevant_ground_program",
    "instantiate_rule",
    "least_model",
    "least_model_with_blocked",
    "WellFoundedResult",
    "well_founded_model",
    "tp_operator",
    "wp_operator",
    "greatest_unfounded_set",
    "stable_models",
    "is_stable_model",
    "solve_builtin",
    "evaluate_ground_builtin",
    "is_arithmetic_term",
    "evaluate_aggregate",
    "LayeredStore",
    "PlanSources",
    "RelationStore",
    "SeminaiveResult",
    "SeminaiveUnsupported",
    "SeminaiveWellFoundedResult",
    "Stratification",
    "StratumPlan",
    "compile_stratum",
    "evaluate_stratum",
    "run_plan",
    "seminaive_evaluate",
    "seminaive_perfect_model",
    "seminaive_well_founded",
    "seminaive_well_founded_model",
    "stratify_program",
]
