"""Least-model computation for definite ground programs.

This is the work-horse used by the alternating-fixpoint well-founded
semantics (via the Gelfond–Lifschitz transform), by the stable-model check
and by the unfounded-set computation: all of them repeatedly need the least
model of a set of ground Horn rules, possibly after discarding rules
"blocked" by their negative body.

The implementation is the classical linear-time counting algorithm (Dowling
& Gallier): each rule keeps a counter of not-yet-satisfied positive body
atoms; when the counter reaches zero the head is derived and propagated.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.hilog.terms import Term


def least_model(rules, initial=()):
    """Least model of a definite ground program.

    ``rules`` is a sequence of objects with ``head`` and ``positive``
    attributes (negative bodies are ignored — callers that need the
    Gelfond–Lifschitz transform should use :func:`least_model_with_blocked`).
    ``initial`` seeds the model with extra true atoms.
    """
    return least_model_with_blocked(rules, blocked=lambda rule: False, initial=initial)


def least_model_with_blocked(rules, blocked, initial=()):
    """Least model of the positive parts of ``rules``, skipping blocked rules.

    ``blocked(rule)`` should return True when the rule must be discarded
    (typically because one of its negative body atoms is true in the context
    interpretation — this realizes the Gelfond–Lifschitz reduct without
    materializing it).
    """
    rules = list(rules)
    true = set(initial)
    queue = deque(true)

    # Index: atom -> list of rule indices where the atom occurs positively.
    watchers = {}
    counters = []
    heads = []
    for idx, rule in enumerate(rules):
        if blocked(rule):
            counters.append(-1)  # never fires
            heads.append(rule.head)
            continue
        remaining = 0
        for atom in rule.positive:
            if atom in true:
                continue
            remaining += 1
            watchers.setdefault(atom, []).append(idx)
        counters.append(remaining)
        heads.append(rule.head)
        if remaining == 0 and rule.head not in true:
            true.add(rule.head)
            queue.append(rule.head)

    while queue:
        atom = queue.popleft()
        for idx in watchers.get(atom, ()):  # each occurrence decremented once
            if counters[idx] <= 0:
                continue
            counters[idx] -= 1
            if counters[idx] == 0:
                head = heads[idx]
                if head not in true:
                    true.add(head)
                    queue.append(head)
    return true


def gelfond_lifschitz(rules, context_true):
    """The Gelfond–Lifschitz operator Γ.

    Returns the least model of the reduct of ``rules`` with respect to the
    set ``context_true`` of atoms assumed true: rules with a negative body
    atom in ``context_true`` are deleted, remaining negative literals are
    dropped.
    """
    context = context_true if isinstance(context_true, (set, frozenset)) else set(context_true)
    return least_model_with_blocked(
        rules,
        blocked=lambda rule: any(atom in context for atom in rule.negative),
    )
