"""Three-valued Herbrand interpretations.

An interpretation assigns *true*, *false* or *undefined* to ground atoms
(paper, Definition 3.2 for normal programs; Definition 2.2 for the HiLog
quadruple view).  We represent an interpretation by its finite set of true
atoms, its finite set of false atoms and (optionally) the atom *base* it is
relative to: atoms in the base but in neither set are undefined, atoms
outside the base are treated as false by convention (the closed-world
reading used throughout the paper's unfoundedness arguments).

The module also implements the paper's comparison relations between
interpretations over different languages:

* :func:`extends` — Definition 2.4 (first half): everything true stays true
  and nothing undefined becomes false.
* :func:`conservatively_extends` — Definition 2.4 (second half): on atoms
  expressible in the smaller language the two interpretations agree exactly,
  and every *new* atom whose predicate name is expressible in the smaller
  language is false in the larger interpretation ("the only extra
  information is negative").
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Optional, Set

from repro.hilog.terms import App, Sym, Term, predicate_name


class Interpretation:
    """A three-valued interpretation given by true atoms, false atoms, base."""

    __slots__ = ("true", "false", "base")

    def __init__(self, true=(), false=(), base=None):
        true = frozenset(true)
        false = frozenset(false)
        if true & false:
            overlap = next(iter(true & false))
            raise ValueError("inconsistent interpretation: %r is both true and false" % (overlap,))
        if base is None:
            base = true | false
        else:
            base = frozenset(base) | true | false
        object.__setattr__(self, "true", true)
        object.__setattr__(self, "false", false)
        object.__setattr__(self, "base", base)

    def __setattr__(self, key, value):
        raise AttributeError("Interpretation is immutable")

    def __eq__(self, other):
        if not isinstance(other, Interpretation):
            return NotImplemented
        return self.true == other.true and self.false == other.false and self.base == other.base

    def __hash__(self):
        return hash((self.true, self.false, self.base))

    def __repr__(self):
        return "Interpretation(true=%d, false=%d, undefined=%d)" % (
            len(self.true),
            len(self.false),
            len(self.undefined),
        )

    # -- truth queries --------------------------------------------------------
    @property
    def undefined(self):
        """The atoms of the base that are neither true nor false."""
        return self.base - self.true - self.false

    def is_true(self, atom):
        return atom in self.true

    def is_false(self, atom):
        """Atoms explicitly false, or outside the base (closed world)."""
        if atom in self.false:
            return True
        return atom not in self.base

    def is_undefined(self, atom):
        return atom in self.base and atom not in self.true and atom not in self.false

    def value(self, atom):
        """Return 'true', 'false' or 'undefined'."""
        if self.is_true(atom):
            return "true"
        if self.is_undefined(atom):
            return "undefined"
        return "false"

    def satisfies_literal(self, literal):
        """True when a ground literal holds in the interpretation."""
        if literal.positive:
            return self.is_true(literal.atom)
        return self.is_false(literal.atom)

    def is_total(self):
        """True when no atom of the base is undefined."""
        return not self.undefined

    # -- construction ---------------------------------------------------------
    def with_base(self, base):
        """Return the same interpretation over an enlarged base."""
        return Interpretation(self.true, self.false, frozenset(base) | self.base)

    def complete(self):
        """Return the total interpretation making every undefined atom false."""
        return Interpretation(self.true, self.false | self.undefined, self.base)

    def restrict(self, keep):
        """Restrict to atoms satisfying the predicate ``keep``."""
        return Interpretation(
            {a for a in self.true if keep(a)},
            {a for a in self.false if keep(a)},
            {a for a in self.base if keep(a)},
        )

    def union(self, other):
        """Union of two interpretations (must be consistent)."""
        return Interpretation(
            self.true | other.true,
            self.false | other.false,
            self.base | other.base,
        )

    def as_literal_set(self):
        """The interpretation as a set of signed ground literals."""
        from repro.hilog.program import Literal

        result = {Literal(atom, True) for atom in self.true}
        result |= {Literal(atom, False) for atom in self.false}
        return result


def restrict_to_symbols(interpretation, symbols):
    """Restrict an interpretation to atoms built only from ``symbols``."""
    allowed = set(symbols)

    def keep(atom):
        return set(atom.symbols()) <= allowed

    return interpretation.restrict(keep)


def _name_expressible(atom, symbols):
    """True when the predicate *name* of ``atom`` uses only ``symbols``.

    This captures "atoms in the language of I' whose name is in P_I" from
    Definition 2.4.
    """
    return set(predicate_name(atom).symbols()) <= set(symbols)


def _atom_expressible(atom, symbols):
    """True when the whole atom uses only ``symbols`` (it is legal in I)."""
    return set(atom.symbols()) <= set(symbols)


def extends(larger, smaller, smaller_symbols=None):
    """Definition 2.4 (first half): does ``larger`` extend ``smaller``?

    Everything true in ``smaller`` must be true in ``larger``, and everything
    undefined in ``smaller`` must be true or undefined (not false) in
    ``larger``.  Only atoms whose predicate name is expressible in the
    smaller language are considered.
    """
    if smaller_symbols is None:
        smaller_symbols = _symbols_of(smaller)
    for atom in smaller.true:
        if not larger.is_true(atom):
            return False
    for atom in smaller.undefined:
        if larger.is_false(atom):
            return False
    return True


def conservatively_extends(larger, smaller, smaller_symbols=None):
    """Definition 2.4 (second half): does ``larger`` conservatively extend
    ``smaller``?

    For atoms of ``larger``'s base whose predicate name is expressible with
    ``smaller``'s symbols:

    * if the whole atom is expressible in the smaller language, its truth
      value must be the same in both interpretations;
    * otherwise (a "new" atom about an old predicate) it must be false in
      ``larger``.
    """
    if smaller_symbols is None:
        smaller_symbols = _symbols_of(smaller)
    smaller_symbols = set(smaller_symbols)

    # Old atoms keep their truth value.
    for atom in smaller.true:
        if not larger.is_true(atom):
            return False
    for atom in smaller.false:
        if not larger.is_false(atom):
            return False
    for atom in smaller.undefined:
        if not larger.is_undefined(atom):
            return False

    # Atoms of the larger base about old predicate names: either old atoms
    # (checked above) or new atoms, which must be false.
    for atom in larger.true | larger.undefined:
        if not _name_expressible(atom, smaller_symbols):
            continue
        if _atom_expressible(atom, smaller_symbols):
            # Old atom: it must have the same value in the smaller model,
            # which for atoms outside smaller's base means false.
            if smaller.is_false(atom) and atom not in smaller.base:
                # The atom is "legal" in the smaller language but was never
                # materialized there; being true/undefined in the larger
                # model is new (non-negative) information, so reject.
                return False
            if atom in larger.true and not smaller.is_true(atom):
                return False
            if atom in larger.undefined and not smaller.is_undefined(atom):
                return False
        else:
            # New atom about an old predicate: only negative information is
            # allowed, so it must not be true or undefined.
            return False
    return True


def _symbols_of(interpretation):
    """All symbols appearing in an interpretation's base."""
    symbols = set()
    for atom in interpretation.base:
        symbols |= atom.symbols()
    return symbols
