"""Join-plan compilation for the semi-naive engine.

A rule body is compiled into an ordered sequence of :class:`JoinStep`\\ s:
fetches of positive literals from the indexed relation store, negation
checks, and builtin evaluations.  The ordering is chosen greedily with the
same sideways-information-passing notions the magic-sets rewriting uses
(:mod:`repro.core.magic.sips`): a builtin runs as soon as it is evaluable, a
negation as soon as it is ground, and among the positive literals the one
sharing the most already-bound variables is fetched next (so joins stay
connected instead of degenerating into cross products).  The compiled plan
is then annotated by :func:`repro.core.magic.sips.left_to_right_sips` run
over the reordered body, which supplies the bound-variable set before each
step; from it the planner derives, for every fetch, the argument positions
that will be ground at runtime — exactly the positions the relation store
indexes on.

For semi-naive evaluation the compiler also produces *delta variants*: the
same rule with one designated recursive body literal forced to the front of
the plan, to be scanned from the per-iteration delta relation instead of the
full store.

Beyond the (declarative) :class:`JoinPlan`, the compiler lowers every plan
into a flat **register program** (:class:`RegisterProgram`): rule variables
are numbered into integer slots of a preallocated register list, each fetch
becomes an indexed probe whose index key is built straight from registers,
and matching a candidate fact is a short sequence of identity checks and
register writes — no per-candidate :class:`~repro.hilog.subst.Substitution`
allocation anywhere on the hot path.  Because terms are hash-consed
(:mod:`repro.hilog.terms`), "the fact's argument equals the bound value" is
a single pointer comparison.  The executor lives in
:mod:`repro.engine.seminaive.engine`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, NamedTuple, Optional, Tuple

from repro.core.magic.sips import left_to_right_sips
from repro.engine.aggregates import group_variables
from repro.hilog.errors import HiLogError
from repro.hilog.program import Literal, Rule
from repro.hilog.terms import App, Num, Sym, Term, Var, atom_arguments, predicate_name


class PlanError(HiLogError):
    """Raised when a rule body cannot be ordered into a safe join plan
    (a negative subgoal or an unbound-name subgoal that never becomes
    schedulable — the floundering of the paper's footnote 10)."""


#: Join-step kinds.
FETCH = "fetch"
NEGATION = "negation"
BUILTIN = "builtin"


class JoinStep(NamedTuple):
    """One step of a compiled join plan."""

    kind: str
    literal: Literal
    #: Index into the original rule body (for delta bookkeeping).
    body_index: int
    #: Variables guaranteed bound when the step runs.
    bound_before: FrozenSet[Var]
    #: Argument positions of a fetch that are ground at runtime (index key).
    index_positions: Tuple[int, ...]
    #: Whether this fetch reads the delta relation instead of the full store.
    from_delta: bool


class AggregateStep(NamedTuple):
    """A compiled aggregate subgoal (runs after the body join)."""

    spec: object
    group_vars: Tuple[Var, ...]
    condition_name: Term
    condition_arity: int


class JoinPlan(NamedTuple):
    """A fully ordered evaluation plan for one rule."""

    rule: Rule
    steps: Tuple[JoinStep, ...]
    #: Builtins that could not be scheduled and run (and may fail) last.
    deferred_builtins: Tuple[Literal, ...]
    aggregates: Tuple[AggregateStep, ...]
    #: Body indices of positive non-builtin literals (delta-variant sites).
    positive_body_indices: Tuple[int, ...]
    #: The plan lowered to a flat register program (the hot-path executable).
    registers: Optional["RegisterProgram"] = None

    def pin_roots(self):
        """Term roots this plan retains, for intern-generation pin sets.

        Every constant the lowering bakes into the register program —
        indicator names (``RFetch.const_name``), ``M_CONST`` payloads,
        builder constants, the ``head_fast`` name — is a subterm of the
        source rule, so pinning the rule's roots keeps all compiled
        references canonical across a collection."""
        return self.rule.pin_roots()


def _builtin_ready(literal, bound):
    """Mirror of :func:`repro.engine.builtins.solve_builtin`'s capabilities:
    a builtin is schedulable when it is ground, or when it is a binding
    ``is``/``=`` whose defined side is ground."""
    atom = literal.atom
    if atom.variables() <= bound:
        return True
    if not isinstance(atom, App) or len(atom.args) != 2 or not isinstance(atom.name, Sym):
        return False
    op = atom.name.name
    left, right = atom.args
    if op in ("is", "=") and isinstance(left, Var) and right.variables() <= bound:
        return True
    if op == "=" and isinstance(right, Var) and left.variables() <= bound:
        return True
    return False


def _positive_schedulable(literal, bound):
    """A positive subgoal can be fetched unless its predicate name is an
    unbound variable with no arguments to constrain the scan (the same
    condition :func:`repro.core.magic.sips._flounders` enforces)."""
    name_vars = predicate_name(literal.atom).variables()
    if name_vars and not (name_vars <= bound or atom_arguments(literal.atom)):
        return False
    return True


def _order_body(rule, delta_index, initially_bound=frozenset()):
    """Greedy safe ordering of the rule body.

    Returns ``(ordered, deferred_builtins)`` where ``ordered`` is a list of
    ``(body_index, literal)`` pairs.  Raises :class:`PlanError` when a
    negative or unbound-name subgoal can never be scheduled.
    ``initially_bound`` names variables guaranteed bound before the body
    runs (head variables, for plans evaluated against a ground head).
    """
    remaining = [(i, lit) for i, lit in enumerate(rule.body)]
    ordered = []
    bound = set(initially_bound)

    def bind(literal):
        # Reuse the SIPS binding rule: positives bind their variables,
        # binding builtins bind their left-hand side, negation binds nothing.
        if literal.is_builtin():
            atom = literal.atom
            if (
                isinstance(atom, App)
                and isinstance(atom.name, Sym)
                and atom.name.name in ("is", "=")
                and len(atom.args) == 2
            ):
                left, right = atom.args
                if isinstance(left, Var) and right.variables() <= bound:
                    bound.add(left)
                elif isinstance(right, Var) and left.variables() <= bound:
                    bound.add(right)
            return
        if literal.positive:
            bound.update(literal.atom.variables())

    if delta_index is not None:
        # The delta literal is forced first: scanning the (small) delta
        # relation is always admissible, whatever its binding pattern.
        for item in list(remaining):
            if item[0] == delta_index:
                remaining.remove(item)
                ordered.append(item)
                bind(item[1])
                break

    while remaining:
        chosen = None
        for item in remaining:  # 1. builtins prune/bind earliest
            if item[1].is_builtin() and _builtin_ready(item[1], bound):
                chosen = item
                break
        if chosen is None:  # 2. ground negations prune early
            for item in remaining:
                literal = item[1]
                if literal.negative and not literal.is_builtin() and \
                        literal.atom.variables() <= bound:
                    chosen = item
                    break
        if chosen is None:  # 3. most-connected schedulable positive literal
            best_score = -1
            for item in remaining:
                literal = item[1]
                if not literal.positive or literal.is_builtin():
                    continue
                if not _positive_schedulable(literal, bound):
                    continue
                score = len(literal.atom.variables() & bound)
                if score > best_score:
                    best_score = score
                    chosen = item
            if chosen is None:
                break
        remaining.remove(chosen)
        ordered.append(chosen)
        bind(chosen[1])

    deferred = []
    for index, literal in remaining:
        if literal.is_builtin():
            deferred.append(literal)  # retried after the join, as the grounder does
            continue
        raise PlanError(
            "subgoal %r of rule %r cannot be scheduled without floundering"
            % (literal, rule)
        )
    return ordered, tuple(deferred)


def compile_rule(rule, delta_index=None, bound=frozenset()):
    """Compile ``rule`` into a :class:`JoinPlan`.

    ``delta_index`` (a body position of a positive non-builtin literal)
    produces the semi-naive delta variant in which that literal is read from
    the delta relation and scheduled first.  ``bound`` names head variables
    that will already be bound when the plan runs (the rederivation plans of
    incremental maintenance match the head against a concrete fact first, so
    every head variable is ground before the body joins start).
    """
    ordered, deferred = _order_body(rule, delta_index, initially_bound=bound)

    # Annotate the reordered body with the SIPS machinery: bound-before sets
    # drive index selection, and the flounder flags double-check negation
    # safety (the delta-first step is exempt — a delta scan needs no
    # bindings).
    reordered = Rule(rule.head, tuple(lit for _i, lit in ordered), rule.aggregates)
    sips_steps = left_to_right_sips(reordered, frozenset(bound))

    steps = []
    for position, ((body_index, literal), sip) in enumerate(zip(ordered, sips_steps)):
        from_delta = delta_index is not None and body_index == delta_index
        if literal.is_builtin():
            steps.append(JoinStep(BUILTIN, literal, body_index, sip.bound_before, (), False))
            continue
        if literal.negative:
            if sip.flounders:
                raise PlanError(
                    "negative subgoal %r of rule %r is reached with unbound "
                    "variables (the rule flounders)" % (literal.atom, rule)
                )
            steps.append(JoinStep(NEGATION, literal, body_index, sip.bound_before, (), False))
            continue
        index_positions = tuple(
            i for i, arg in enumerate(atom_arguments(literal.atom))
            if arg.variables() <= sip.bound_before
        )
        steps.append(
            JoinStep(FETCH, literal, body_index, sip.bound_before, index_positions, from_delta)
        )

    aggregate_steps = []
    for spec in rule.aggregates:
        condition_name = predicate_name(spec.condition)
        if not condition_name.is_ground():
            raise PlanError(
                "aggregate condition %r has a non-ground predicate name" % (spec.condition,)
            )
        arity = len(atom_arguments(spec.condition)) if isinstance(spec.condition, App) else -1
        aggregate_steps.append(
            AggregateStep(
                spec=spec,
                group_vars=tuple(sorted(group_variables(spec, rule), key=lambda v: v.name)),
                condition_name=condition_name,
                condition_arity=arity,
            )
        )

    positives = tuple(
        i for i, lit in enumerate(rule.body) if lit.positive and not lit.is_builtin()
    )
    registers = _compile_registers(
        rule, tuple(steps), deferred, tuple(aggregate_steps), frozenset(bound)
    )
    return JoinPlan(
        rule, tuple(steps), deferred, tuple(aggregate_steps), positives, registers
    )


# ---------------------------------------------------------------------------
# Register-program lowering
# ---------------------------------------------------------------------------
#
# A register program numbers the rule's variables into integer slots of one
# preallocated list.  Each join step becomes a flat op:
#
# * a *fetch* resolves its relation by precomputed indicator, builds its
#   index key directly from registers, and matches every candidate fact with
#   a short list of match instructions — identity checks against interned
#   terms, register writes, or (rarely) a structural sub-match;
# * a *negation* builds its ground atom from registers and asks the sources
#   for membership;
# * a *builtin* either runs a compiled numeric comparison on registers or
#   bridges to :func:`repro.engine.builtins.solve_builtin` through a
#   single trusted substitution.
#
# Registers are never trailed or copied: the scheduler guarantees that a
# step only reads registers written by earlier steps on the current path,
# and every step unconditionally (re)writes its own output slots, so
# backtracking is free.  The only exception is variables first bound inside
# a *nested* argument pattern, whose slots are reset to ``None`` before each
# candidate so the structural matcher can distinguish "write" from "check".

#: Fetch match instructions: (code, arg position, payload).
M_CONST = 0   # fact.args[i] is <payload: ground term>
M_WRITE = 1   # regs[<payload: slot>] = fact.args[i]
M_CHECK = 2   # fact.args[i] is regs[<payload: slot>]
M_STRUCT = 3  # structural match of fact.args[i] against <payload: pattern>

#: Name-check codes (applied when candidates are not indicator-exact).
N_IDENT = 0   # fact.name is the runtime-ground name
N_WRITE = 1   # regs[slot] = fact.name  (bare-variable name, first occurrence)
N_STRUCT = 2  # structural match against the (partially bound) name pattern

#: Op kind tags.
R_FETCH = 0
R_NEG = 1
R_BUILTIN = 2

#: Comparison dispatch for the compiled numeric fast path.
COMPARE_OPS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}


class RFetch:
    """A compiled fetch: indexed probe + per-candidate match instructions."""

    __slots__ = (
        "kind", "step", "arity", "const_name", "name_builder", "positions",
        "key_builders", "key_slots", "key_single", "name_check", "match_ops",
        "reset_slots", "prop", "membership",
    )

    def __init__(self, step, arity, const_name, name_builder, positions,
                 key_builders, name_check, match_ops, reset_slots, prop):
        self.kind = R_FETCH
        self.step = step
        self.arity = arity
        self.const_name = const_name
        self.name_builder = name_builder
        self.positions = positions
        self.key_builders = key_builders
        # Fast path: every key part is a bare register read (the common
        # case), so the probe key is a straight register gather.
        self.key_slots = (
            tuple(key_builders)
            if key_builders and all(type(b) is int for b in key_builders)
            else None
        )
        # Fastest path: the key covers every argument position, so the whole
        # atom is determined by the registers and the "fetch" is a single
        # membership probe — no index is ever materialized for it.
        self.membership = arity >= 0 and len(positions) == arity
        # Single-register key for a non-membership probe: the index is keyed
        # by the bare term, so the probe key is one register read.
        self.key_single = (
            self.key_slots[0]
            if self.key_slots is not None and len(self.key_slots) == 1
            and not self.membership
            else None
        )
        self.name_check = name_check
        self.match_ops = match_ops
        self.reset_slots = reset_slots
        self.prop = prop


class RNeg:
    """A compiled negation check: build the ground atom, test membership."""

    __slots__ = ("kind", "builder")

    def __init__(self, builder):
        self.kind = R_NEG
        self.builder = builder


class RBuiltin:
    """A compiled builtin: numeric fast path or a substitution bridge."""

    __slots__ = ("kind", "atom", "in_pairs", "out_pairs", "compare")

    def __init__(self, atom, in_pairs, out_pairs, compare):
        self.kind = R_BUILTIN
        self.atom = atom
        self.in_pairs = in_pairs
        self.out_pairs = out_pairs
        self.compare = compare


class RegisterProgram(NamedTuple):
    """A join plan lowered to a flat register machine."""

    #: Number of registers (one per numbered rule variable).
    nregs: int
    #: Variable -> register index (also used by the structural matcher).
    slot_of: Dict
    #: Ops executed in order; each either fails or binds its output slots.
    ops: Tuple
    #: Builder for the rule head (reads registers; used on the fast path).
    head_builder: object
    #: ``(var, slot)`` pairs bound once all ops succeed, for bridging to a
    #: :class:`Substitution` on the aggregate/deferred-builtin slow path.
    bridge: Tuple
    #: True when the plan has no aggregates and no deferred builtins, so
    #: heads can be built straight from registers.
    fast: bool
    #: ``(ground name, argument slots)`` when the head is a flat application
    #: of bound variables — the head is then one register gather + one
    #: intern probe.  ``None`` otherwise.
    head_fast: Optional[Tuple]


def build_term(builder, regs):
    """Materialize a compiled term builder against the registers.

    Builders are ground :class:`Term` constants (returned as-is), ``int``
    register reads, or ``(name_builder, arg_builders)`` application nodes.
    Unbound variables survive as :class:`Var` constants, so callers can
    detect non-ground results with the cached groundness bit.
    """
    kind = type(builder)
    if kind is int:
        return regs[builder]
    if kind is tuple:
        return App(
            build_term(builder[0], regs),
            tuple(build_term(part, regs) for part in builder[1]),
        )
    return builder


def _compile_builder(term, bound, slot):
    """Compile ``term`` into a builder; variables in ``bound`` become
    register reads, other variables stay as constants (non-ground output)."""
    if term.is_ground():
        return term
    if type(term) is Var:
        return slot(term) if term in bound else term
    return (
        _compile_builder(term.name, bound, slot),
        tuple(_compile_builder(arg, bound, slot) for arg in term.args),
    )


def _compile_fetch(step, bound, slot):
    """Compile one FETCH step against the running bound-variable set."""
    atom = step.literal.atom
    if not isinstance(atom, App):
        # Propositional subgoal: a ground symbol, or a bare variable.
        if atom.is_ground():
            prop = (0, atom)
        else:
            prop = (1, slot(atom), atom in bound)
        return RFetch(step, -1, None, None, (), (), None, (), (), prop)

    arity = len(atom.args)
    name = atom.name
    reset_slots = []
    written = set()
    if name.is_ground():
        const_name = name
        name_builder = None
        name_check = (N_IDENT,)
    else:
        const_name = None
        name_builder = _compile_builder(name, bound, slot)
        if type(name) is Var and name not in bound:
            name_check = (N_WRITE, slot(name))
            written.add(name)
        elif name.variables() <= bound:
            name_check = (N_IDENT,)
        else:
            new = name.variables() - bound
            written |= new
            reset_slots.extend(slot(v) for v in new)
            name_check = (N_STRUCT, name)

    key_builders = tuple(
        _compile_builder(atom.args[i], bound, slot) for i in step.index_positions
    )

    match_ops = []
    for i, arg in enumerate(atom.args):
        if arg.is_ground():
            match_ops.append((M_CONST, i, arg))
        elif type(arg) is Var:
            if arg in bound or arg in written:
                match_ops.append((M_CHECK, i, slot(arg)))
            else:
                match_ops.append((M_WRITE, i, slot(arg)))
                written.add(arg)
        else:
            new = arg.variables() - bound - written
            written |= new
            reset_slots.extend(slot(v) for v in new)
            match_ops.append((M_STRUCT, i, arg))

    return RFetch(
        step, arity, const_name, name_builder, step.index_positions,
        key_builders, name_check, tuple(match_ops), tuple(reset_slots), None,
    )


def _compile_builtin(step, bound, slot):
    """Compile one BUILTIN step: numeric fast path when both operands are
    registers/number constants, substitution bridge otherwise."""
    atom = step.literal.atom
    compare = None
    if (
        isinstance(atom, App)
        and isinstance(atom.name, Sym)
        and len(atom.args) == 2
        and atom.name.name in COMPARE_OPS
    ):
        codes = []
        for operand in atom.args:
            if type(operand) is Num:
                codes.append(operand)
            elif type(operand) is Var and operand in bound:
                codes.append(slot(operand))
            else:
                codes = None
                break
        if codes is not None:
            compare = (COMPARE_OPS[atom.name.name], codes[0], codes[1])

    in_pairs = tuple(
        sorted(((v, slot(v)) for v in atom.variables() & bound),
               key=lambda pair: pair[1])
    )
    out_pairs = ()
    if (
        isinstance(atom, App)
        and isinstance(atom.name, Sym)
        and atom.name.name in ("is", "=")
        and len(atom.args) == 2
    ):
        left, right = atom.args
        if type(left) is Var and left not in bound and right.variables() <= bound:
            out_pairs = ((left, slot(left)),)
        elif (
            atom.name.name == "="
            and type(right) is Var
            and right not in bound
            and left.variables() <= bound
        ):
            out_pairs = ((right, slot(right)),)
    return RBuiltin(atom, in_pairs, out_pairs, compare)


def _bind_after(step, bound):
    """Extend ``bound`` with the variables the step binds at runtime (the
    same rule :func:`_order_body`'s ``bind`` applies during scheduling)."""
    literal = step.literal
    if step.kind == BUILTIN:
        atom = literal.atom
        if (
            isinstance(atom, App)
            and isinstance(atom.name, Sym)
            and atom.name.name in ("is", "=")
            and len(atom.args) == 2
        ):
            left, right = atom.args
            if type(left) is Var and right.variables() <= bound:
                bound.add(left)
            elif type(right) is Var and left.variables() <= bound:
                bound.add(right)
        return
    if step.kind == FETCH:
        bound.update(literal.atom.variables())


def _compile_registers(rule, steps, deferred, aggregates, initially_bound):
    """Lower an ordered plan into a :class:`RegisterProgram`."""
    slot_of = {}

    def slot(variable):
        index = slot_of.get(variable)
        if index is None:
            index = len(slot_of)
            slot_of[variable] = index
        return index

    # Pre-bound (head-bound) variables get the lowest slots, in name order,
    # so rederivation bindings land deterministically.
    for variable in sorted(initially_bound, key=lambda v: v.name):
        slot(variable)

    bound = set(initially_bound)
    ops = []
    for step in steps:
        if step.kind == FETCH:
            ops.append(_compile_fetch(step, bound, slot))
        elif step.kind == NEGATION:
            ops.append(RNeg(_compile_builder(step.literal.atom, bound, slot)))
        else:
            ops.append(_compile_builtin(step, bound, slot))
        _bind_after(step, bound)

    head_builder = _compile_builder(rule.head, bound, slot)
    head = rule.head
    head_fast = None
    if (
        isinstance(head, App)
        and head.name.is_ground()
        and all(type(arg) is Var and arg in bound for arg in head.args)
    ):
        head_fast = (head.name, tuple(slot_of[arg] for arg in head.args))
    bridge = tuple(
        sorted(((v, slot_of[v]) for v in bound if v in slot_of),
               key=lambda pair: pair[1])
    )
    return RegisterProgram(
        nregs=len(slot_of),
        slot_of=slot_of,
        ops=tuple(ops),
        head_builder=head_builder,
        bridge=bridge,
        fast=not deferred and not aggregates,
        head_fast=head_fast,
    )
