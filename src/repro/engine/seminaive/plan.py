"""Join-plan compilation for the semi-naive engine.

A rule body is compiled into an ordered sequence of :class:`JoinStep`\\ s:
fetches of positive literals from the indexed relation store, negation
checks, and builtin evaluations.  The ordering is chosen greedily with the
same sideways-information-passing notions the magic-sets rewriting uses
(:mod:`repro.core.magic.sips`): a builtin runs as soon as it is evaluable, a
negation as soon as it is ground, and among the positive literals the one
sharing the most already-bound variables is fetched next (so joins stay
connected instead of degenerating into cross products).  The compiled plan
is then annotated by :func:`repro.core.magic.sips.left_to_right_sips` run
over the reordered body, which supplies the bound-variable set before each
step; from it the planner derives, for every fetch, the argument positions
that will be ground at runtime — exactly the positions the relation store
indexes on.

For semi-naive evaluation the compiler also produces *delta variants*: the
same rule with one designated recursive body literal forced to the front of
the plan, to be scanned from the per-iteration delta relation instead of the
full store.
"""

from __future__ import annotations

from typing import FrozenSet, NamedTuple, Tuple

from repro.core.magic.sips import left_to_right_sips
from repro.engine.aggregates import group_variables
from repro.hilog.errors import HiLogError
from repro.hilog.program import Literal, Rule
from repro.hilog.terms import App, Sym, Term, Var, atom_arguments, predicate_name


class PlanError(HiLogError):
    """Raised when a rule body cannot be ordered into a safe join plan
    (a negative subgoal or an unbound-name subgoal that never becomes
    schedulable — the floundering of the paper's footnote 10)."""


#: Join-step kinds.
FETCH = "fetch"
NEGATION = "negation"
BUILTIN = "builtin"


class JoinStep(NamedTuple):
    """One step of a compiled join plan."""

    kind: str
    literal: Literal
    #: Index into the original rule body (for delta bookkeeping).
    body_index: int
    #: Variables guaranteed bound when the step runs.
    bound_before: FrozenSet[Var]
    #: Argument positions of a fetch that are ground at runtime (index key).
    index_positions: Tuple[int, ...]
    #: Whether this fetch reads the delta relation instead of the full store.
    from_delta: bool


class AggregateStep(NamedTuple):
    """A compiled aggregate subgoal (runs after the body join)."""

    spec: object
    group_vars: Tuple[Var, ...]
    condition_name: Term
    condition_arity: int


class JoinPlan(NamedTuple):
    """A fully ordered evaluation plan for one rule."""

    rule: Rule
    steps: Tuple[JoinStep, ...]
    #: Builtins that could not be scheduled and run (and may fail) last.
    deferred_builtins: Tuple[Literal, ...]
    aggregates: Tuple[AggregateStep, ...]
    #: Body indices of positive non-builtin literals (delta-variant sites).
    positive_body_indices: Tuple[int, ...]


def _builtin_ready(literal, bound):
    """Mirror of :func:`repro.engine.builtins.solve_builtin`'s capabilities:
    a builtin is schedulable when it is ground, or when it is a binding
    ``is``/``=`` whose defined side is ground."""
    atom = literal.atom
    if atom.variables() <= bound:
        return True
    if not isinstance(atom, App) or len(atom.args) != 2 or not isinstance(atom.name, Sym):
        return False
    op = atom.name.name
    left, right = atom.args
    if op in ("is", "=") and isinstance(left, Var) and right.variables() <= bound:
        return True
    if op == "=" and isinstance(right, Var) and left.variables() <= bound:
        return True
    return False


def _positive_schedulable(literal, bound):
    """A positive subgoal can be fetched unless its predicate name is an
    unbound variable with no arguments to constrain the scan (the same
    condition :func:`repro.core.magic.sips._flounders` enforces)."""
    name_vars = predicate_name(literal.atom).variables()
    if name_vars and not (name_vars <= bound or atom_arguments(literal.atom)):
        return False
    return True


def _order_body(rule, delta_index, initially_bound=frozenset()):
    """Greedy safe ordering of the rule body.

    Returns ``(ordered, deferred_builtins)`` where ``ordered`` is a list of
    ``(body_index, literal)`` pairs.  Raises :class:`PlanError` when a
    negative or unbound-name subgoal can never be scheduled.
    ``initially_bound`` names variables guaranteed bound before the body
    runs (head variables, for plans evaluated against a ground head).
    """
    remaining = [(i, lit) for i, lit in enumerate(rule.body)]
    ordered = []
    bound = set(initially_bound)

    def bind(literal):
        # Reuse the SIPS binding rule: positives bind their variables,
        # binding builtins bind their left-hand side, negation binds nothing.
        if literal.is_builtin():
            atom = literal.atom
            if (
                isinstance(atom, App)
                and isinstance(atom.name, Sym)
                and atom.name.name in ("is", "=")
                and len(atom.args) == 2
            ):
                left, right = atom.args
                if isinstance(left, Var) and right.variables() <= bound:
                    bound.add(left)
                elif isinstance(right, Var) and left.variables() <= bound:
                    bound.add(right)
            return
        if literal.positive:
            bound.update(literal.atom.variables())

    if delta_index is not None:
        # The delta literal is forced first: scanning the (small) delta
        # relation is always admissible, whatever its binding pattern.
        for item in list(remaining):
            if item[0] == delta_index:
                remaining.remove(item)
                ordered.append(item)
                bind(item[1])
                break

    while remaining:
        chosen = None
        for item in remaining:  # 1. builtins prune/bind earliest
            if item[1].is_builtin() and _builtin_ready(item[1], bound):
                chosen = item
                break
        if chosen is None:  # 2. ground negations prune early
            for item in remaining:
                literal = item[1]
                if literal.negative and not literal.is_builtin() and \
                        literal.atom.variables() <= bound:
                    chosen = item
                    break
        if chosen is None:  # 3. most-connected schedulable positive literal
            best_score = -1
            for item in remaining:
                literal = item[1]
                if not literal.positive or literal.is_builtin():
                    continue
                if not _positive_schedulable(literal, bound):
                    continue
                score = len(literal.atom.variables() & bound)
                if score > best_score:
                    best_score = score
                    chosen = item
            if chosen is None:
                break
        remaining.remove(chosen)
        ordered.append(chosen)
        bind(chosen[1])

    deferred = []
    for index, literal in remaining:
        if literal.is_builtin():
            deferred.append(literal)  # retried after the join, as the grounder does
            continue
        raise PlanError(
            "subgoal %r of rule %r cannot be scheduled without floundering"
            % (literal, rule)
        )
    return ordered, tuple(deferred)


def compile_rule(rule, delta_index=None, bound=frozenset()):
    """Compile ``rule`` into a :class:`JoinPlan`.

    ``delta_index`` (a body position of a positive non-builtin literal)
    produces the semi-naive delta variant in which that literal is read from
    the delta relation and scheduled first.  ``bound`` names head variables
    that will already be bound when the plan runs (the rederivation plans of
    incremental maintenance match the head against a concrete fact first, so
    every head variable is ground before the body joins start).
    """
    ordered, deferred = _order_body(rule, delta_index, initially_bound=bound)

    # Annotate the reordered body with the SIPS machinery: bound-before sets
    # drive index selection, and the flounder flags double-check negation
    # safety (the delta-first step is exempt — a delta scan needs no
    # bindings).
    reordered = Rule(rule.head, tuple(lit for _i, lit in ordered), rule.aggregates)
    sips_steps = left_to_right_sips(reordered, frozenset(bound))

    steps = []
    for position, ((body_index, literal), sip) in enumerate(zip(ordered, sips_steps)):
        from_delta = delta_index is not None and body_index == delta_index
        if literal.is_builtin():
            steps.append(JoinStep(BUILTIN, literal, body_index, sip.bound_before, (), False))
            continue
        if literal.negative:
            if sip.flounders:
                raise PlanError(
                    "negative subgoal %r of rule %r is reached with unbound "
                    "variables (the rule flounders)" % (literal.atom, rule)
                )
            steps.append(JoinStep(NEGATION, literal, body_index, sip.bound_before, (), False))
            continue
        index_positions = tuple(
            i for i, arg in enumerate(atom_arguments(literal.atom))
            if arg.variables() <= sip.bound_before
        )
        steps.append(
            JoinStep(FETCH, literal, body_index, sip.bound_before, index_positions, from_delta)
        )

    aggregate_steps = []
    for spec in rule.aggregates:
        condition_name = predicate_name(spec.condition)
        if not condition_name.is_ground():
            raise PlanError(
                "aggregate condition %r has a non-ground predicate name" % (spec.condition,)
            )
        arity = len(atom_arguments(spec.condition)) if isinstance(spec.condition, App) else -1
        aggregate_steps.append(
            AggregateStep(
                spec=spec,
                group_vars=tuple(sorted(group_variables(spec, rule), key=lambda v: v.name)),
                condition_name=condition_name,
                condition_arity=arity,
            )
        )

    positives = tuple(
        i for i, lit in enumerate(rule.body) if lit.positive and not lit.is_builtin()
    )
    return JoinPlan(rule, tuple(steps), deferred, tuple(aggregate_steps), positives)
