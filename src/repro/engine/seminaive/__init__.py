"""Semi-naive bottom-up evaluation over indexed relation stores.

The fast-path evaluation subsystem: per-predicate fact relations with
on-demand hash indexes (:mod:`repro.engine.seminaive.relation`), a rule
compiler that orders bodies into join plans with the SIPS machinery of the
magic-sets rewriting (:mod:`repro.engine.seminaive.plan`), and a
delta-driven stratum-by-stratum fixpoint
(:mod:`repro.engine.seminaive.engine`).

Entry points::

    from repro.engine.seminaive import seminaive_evaluate, seminaive_perfect_model
    from repro.engine.seminaive import seminaive_well_founded

or, at the API surface the paper experiments use,
``perfect_model_for_hilog(program, strategy="seminaive")``,
``well_founded_for_hilog(program, strategy="seminaive")`` and
``magic_evaluate(program, query, strategy="seminaive")``.  The
``seminaive_well_founded`` entry point (the alternating fixpoint of
:mod:`repro.engine.seminaive.wellfounded`) extends the engine beyond the
stratified class to programs with cycles through negation, returning the
three-valued well-founded model.
"""

from repro.engine.seminaive.engine import (
    EXECUTION_STATS,
    ExecutionStats,
    PlanSources,
    SeminaiveResult,
    SeminaiveUnsupported,
    Stratification,
    StratumPlan,
    check_derived_atom,
    compile_stratum,
    evaluate_stratum,
    plan_satisfiable,
    run_plan,
    seminaive_evaluate,
    seminaive_perfect_model,
    stratify_program,
)
from repro.engine.seminaive.plan import (
    JoinPlan,
    JoinStep,
    PlanError,
    RegisterProgram,
    compile_rule,
)
from repro.engine.seminaive.relation import (
    LayeredStore,
    OverlayStore,
    Relation,
    RelationStore,
    predicate_indicator,
)
from repro.engine.seminaive.wellfounded import (
    SeminaiveWellFoundedResult,
    seminaive_well_founded,
    seminaive_well_founded_detailed,
    seminaive_well_founded_model,
)

__all__ = [
    "LayeredStore",
    "OverlayStore",
    "SeminaiveWellFoundedResult",
    "seminaive_well_founded",
    "seminaive_well_founded_detailed",
    "seminaive_well_founded_model",
    "EXECUTION_STATS",
    "ExecutionStats",
    "PlanSources",
    "SeminaiveResult",
    "SeminaiveUnsupported",
    "Stratification",
    "StratumPlan",
    "check_derived_atom",
    "compile_stratum",
    "evaluate_stratum",
    "plan_satisfiable",
    "run_plan",
    "seminaive_evaluate",
    "seminaive_perfect_model",
    "stratify_program",
    "JoinPlan",
    "JoinStep",
    "PlanError",
    "RegisterProgram",
    "compile_rule",
    "Relation",
    "RelationStore",
    "predicate_indicator",
]
