"""Indexed fact relations for the semi-naive engine.

A :class:`RelationStore` partitions ground atoms by *predicate indicator* —
the pair ``(predicate-name term, arity)`` — the HiLog analogue of the
``p/n`` indicators of a deductive database.  Because HiLog predicate names
may themselves be complex terms (``winning(m)``), the name component of the
indicator is an arbitrary ground term; atoms that are not applications
(propositional symbols) use arity ``-1`` so that ``p`` and the zero-ary
application ``p()`` stay distinct (footnote 1 of the paper).

Each :class:`Relation` keeps its facts in an insertion-ordered set together
with on-demand hash indexes keyed by subsets of argument positions: the
first lookup that binds positions ``(0, 2)`` builds a dictionary from the
values at those positions to the matching facts, and subsequent insertions
and removals keep every existing index current.  This is what makes
semi-naive joins run in time proportional to the number of matching facts
instead of the size of the relation.

The store additionally supports the operations an *incremental* deductive
database (:mod:`repro.db`) needs on top of monotone insertion:

* :meth:`RelationStore.remove` — delete a fact, maintaining every index
  (used by delete-rederive maintenance);
* *support counts* — :meth:`RelationStore.add_support` /
  :meth:`RelationStore.remove_support` track how many derivations support
  each fact, the bookkeeping of the counting algorithm for non-recursive
  views (Gupta, Mumick & Subrahmanian, SIGMOD'93).  A fact disappears from
  the store exactly when its last support is removed.  The plain
  :meth:`RelationStore.add` has set semantics (a duplicate insert does *not*
  accumulate support) and gives a fact a single support.

Lookups with a *non-ground* predicate name (the higher-order case, e.g. the
body literal ``M(X, Y)`` before ``M`` is bound) fall back to a spill scan
over every relation of the right arity, optionally narrowed by the
outermost symbol of the pattern's name.

For the concurrent serving subsystem (:mod:`repro.serve`) the store grows
*snapshot* machinery: :meth:`RelationStore.snapshot` produces an O(n)
structural copy, :meth:`RelationStore.freeze` turns a store immutable
(mutators raise :class:`FrozenStoreError`; lazy index building remains
legal — it is idempotent over frozen facts, so concurrent readers can
race it safely), and :class:`OverlayStore` is an immutable copy-on-write
view layering a batch's added/removed atoms over a frozen base.  Frozen
bases and overlays both carry **epoch refcounts**
(:meth:`~RelationStore.acquire` / :meth:`~RelationStore.release`): each
live reader epoch holds one reference, so the serving layer knows when a
layer is unreachable and may drop it from intern-GC pin sets.
"""

from __future__ import annotations

from repro.hilog.errors import FrozenStoreError, GroundingError
from repro.hilog.terms import App, Var, outermost_symbol


def predicate_indicator(atom):
    """The ``(name, arity)`` indicator of a ground atom.

    Non-application atoms (bare symbols used as propositions) get arity
    ``-1`` so they never collide with zero-ary applications.
    """
    if isinstance(atom, App):
        return (atom.name, len(atom.args))
    return (atom, -1)


class Relation:
    """The facts of one predicate indicator, with on-demand hash indexes.

    Facts are stored as the keys of an insertion-ordered dictionary (a
    constant-time ordered set), so removal is as cheap as insertion and
    iteration order stays deterministic.
    """

    __slots__ = ("indicator", "facts", "_indexes")

    def __init__(self, indicator):
        self.indicator = indicator
        # atom -> None: an insertion-ordered set supporting O(1) removal.
        self.facts = {}
        # positions tuple -> {argument-value tuple: {atom: None}}
        self._indexes = {}

    def __len__(self):
        return len(self.facts)

    def __iter__(self):
        return iter(self.facts)

    # Single-position indexes are keyed by the bare argument term (whose
    # hash is cached by interning); multi-position indexes by the argument
    # tuple.  Callers pass keys in the same shape (the join compiler and
    # ``RelationStore.candidates`` both do).

    def add(self, atom):
        """Insert a fact (assumed new — membership lives in the store)."""
        self.facts[atom] = None
        for positions, table in self._indexes.items():
            if len(positions) == 1:
                key = atom.args[positions[0]]
            else:
                key = tuple(atom.args[i] for i in positions)
            table.setdefault(key, {})[atom] = None

    def remove(self, atom):
        """Delete a fact (assumed present), maintaining every index."""
        del self.facts[atom]
        for positions, table in self._indexes.items():
            if len(positions) == 1:
                key = atom.args[positions[0]]
            else:
                key = tuple(atom.args[i] for i in positions)
            bucket = table.get(key)
            if bucket is not None:
                bucket.pop(atom, None)
                if not bucket:
                    del table[key]

    def lookup(self, positions, key):
        """Facts whose arguments at ``positions`` equal ``key`` (a bare term
        for single-position indexes, a term tuple otherwise).  Builds the
        index for ``positions`` on first use.

        Returns a fresh list so callers may mutate the relation while
        iterating over the result (the semi-naive loop adds facts mid-scan).
        """
        if not positions:
            return list(self.facts)
        table = self._indexes.get(positions)
        if table is None:
            table = {}
            if len(positions) == 1:
                position = positions[0]
                for atom in self.facts:
                    table.setdefault(atom.args[position], {})[atom] = None
            else:
                for atom in self.facts:
                    fact_key = tuple(atom.args[i] for i in positions)
                    table.setdefault(fact_key, {})[atom] = None
            self._indexes[positions] = table
        bucket = table.get(key)
        return list(bucket) if bucket is not None else ()

    def index_count(self):
        """Number of indexes materialized so far (for diagnostics)."""
        return len(self._indexes)


class DeltaStore:
    """A lightweight per-iteration delta: facts bucketed by indicator.

    The semi-naive loop rebuilds its delta source every iteration; a full
    :class:`RelationStore` (membership set, support counts, index
    maintenance) is wasted work for a collection that is only ever scanned
    whole per indicator.  Fetches ignore the index key — the register
    executor's match instructions verify every argument position anyway —
    but are *exact* per indicator, so variant plans anchored on predicates
    absent from the delta cost one empty dictionary probe.
    """

    __slots__ = ("_buckets", "_count")

    def __init__(self, facts=()):
        buckets = {}
        count = 0
        for atom in facts:
            buckets.setdefault(predicate_indicator(atom), []).append(atom)
            count += 1
        self._buckets = buckets
        self._count = count

    def __len__(self):
        return self._count

    def fetch(self, name, arity, positions, key):
        return self._buckets.get((name, arity), ()), True

    def spill(self, arity, symbol):
        result = []
        for (name, bucket_arity), facts in self._buckets.items():
            if bucket_arity != arity:
                continue
            if symbol is not None and outermost_symbol(name) is not symbol:
                continue
            result.extend(facts)
        return result, False

    def all_facts(self):
        result = []
        for facts in self._buckets.values():
            result.extend(facts)
        return result, False

    def __contains__(self, atom):
        bucket = self._buckets.get(predicate_indicator(atom))
        return bucket is not None and atom in bucket


class LayeredStore:
    """A union read view over a stack of fact stores, adds going to the top.

    The alternating-fixpoint well-founded evaluator
    (:mod:`repro.engine.seminaive.wellfounded`) reads each overestimate
    fixpoint from *proven-true atoms ∪ settled possibly-true atoms ∪ the
    layer being built*, while writing only into that topmost layer — so the
    (shrinking) overestimate of one alternation can be discarded wholesale
    by dropping its layer, with no per-fact deletion and no copying of the
    lower stores.  Layers are disjoint by construction: :meth:`add` refuses
    atoms already present in a lower layer.

    Serves the register executor's fetch protocol (``fetch`` / ``spill`` /
    ``all_facts`` / ``__contains__``) by concatenating the layers' answers,
    and enough of the :class:`RelationStore` surface (``add`` / ``__len__``
    / ``facts``) for :func:`repro.engine.seminaive.engine.evaluate_stratum`
    to run a fixpoint straight into the view.
    """

    __slots__ = ("layers", "top")

    def __init__(self, *layers):
        if not layers:
            raise ValueError("LayeredStore needs at least one layer")
        self.layers = layers
        self.top = layers[-1]

    def __len__(self):
        return sum(len(layer) for layer in self.layers)

    def __contains__(self, atom):
        return any(atom in layer for layer in self.layers)

    def __iter__(self):
        for layer in self.layers:
            yield from layer

    def add(self, atom):
        """Insert into the top layer; ``False`` when present in any layer."""
        for layer in self.layers:
            if layer is not self.top and atom in layer:
                return False
        return self.top.add(atom)

    def facts(self, name, arity):
        result = []
        for layer in self.layers:
            result.extend(layer.facts(name, arity))
        return result

    def fetch(self, name, arity, positions, key):
        result = None
        exact = True
        for layer in self.layers:
            part, part_exact = layer.fetch(name, arity, positions, key)
            exact = exact and part_exact
            if part:
                if result is None:
                    result = part if isinstance(part, list) else list(part)
                else:
                    result.extend(part)
        return (result if result is not None else ()), exact

    def spill(self, arity, symbol):
        result = []
        for layer in self.layers:
            part, _exact = layer.spill(arity, symbol)
            result.extend(part)
        return result, False

    def all_facts(self):
        result = []
        for layer in self.layers:
            part, _exact = layer.all_facts()
            result.extend(part)
        return result, False

    def pin_roots(self):
        """Every layer's atoms, for intern-generation pin sets."""
        for layer in self.layers:
            yield from layer


class OverlayStore:
    """An immutable read view layering net added/removed atoms over a frozen
    base store — the snapshot representation of one serving **epoch**
    (:mod:`repro.serve.epochs`).

    The serving writer maintains its model in place; concurrent readers
    must never observe a half-applied batch.  Rather than copying the whole
    store per batch, an epoch is published as ``base ⊕ overlay``: a frozen
    :class:`RelationStore` snapshot shared by many epochs, plus this view's
    private net diff — ``added`` atoms bucketed by indicator and a
    ``removed`` tombstone set (both relative to the *base*, with successive
    batches collapsed via ``previous`` at construction, so reads always
    consult exactly one overlay regardless of how many batches separate the
    epoch from its base).  The view is never mutated after construction,
    and the base is frozen, so reads need no locks; writes go to the next
    epoch's overlay instead (copy-on-write at the batch granularity).

    Serves the register executor's fetch protocol (``fetch`` / ``spill`` /
    ``all_facts`` / ``__contains__``) and the query-answering surface of
    :class:`RelationStore` (``facts`` / ``candidates``), in both cases by
    filtering the base's answer through the tombstones and appending the
    matching additions.  Like :class:`DeltaStore`, addition fetches ignore
    the index key (the executor re-verifies every argument position, and
    :func:`~repro.core.magic.evaluate.answer_from_store` re-matches), so
    they may over-return but never under-return.

    Carries the same epoch refcount surface as a frozen base
    (:meth:`acquire` / :meth:`release`).
    """

    __slots__ = ("base", "refs", "_added", "_added_members", "_removed",
                 "_count")

    def __init__(self, base, added=(), removed=(), previous=None):
        if previous is not None:
            if previous.base is not base:
                raise ValueError("previous overlay must share the same base")
            buckets = {key: dict(bucket)
                       for key, bucket in previous._added.items()}
            members = set(previous._added_members)
            tombstones = set(previous._removed)
        else:
            buckets = {}
            members = set()
            tombstones = set()
        # Net out the batch: a removal of an overlay-added atom cancels the
        # addition; a removal of a base atom becomes a tombstone; an
        # addition of a tombstoned base atom cancels the tombstone; anything
        # else is a genuinely new atom.  Batches report exact model diffs
        # (UpdateSummary.added/removed), so the four cases are exhaustive.
        for atom in removed:
            if atom in members:
                members.discard(atom)
                indicator = predicate_indicator(atom)
                bucket = buckets.get(indicator)
                if bucket is not None:
                    bucket.pop(atom, None)
                    if not bucket:
                        del buckets[indicator]
            else:
                tombstones.add(atom)
        for atom in added:
            if atom in tombstones:
                tombstones.discard(atom)
            elif atom not in members:
                members.add(atom)
                buckets.setdefault(predicate_indicator(atom), {})[atom] = None
        self.base = base
        self._added = buckets
        self._added_members = members
        self._removed = tombstones
        self._count = len(base) - len(tombstones) + len(members)
        self.refs = 0

    def __len__(self):
        return self._count

    def __contains__(self, atom):
        if atom in self._added_members:
            return True
        return atom in self.base and atom not in self._removed

    def __iter__(self):
        removed = self._removed
        if removed:
            for atom in self.base:
                if atom not in removed:
                    yield atom
        else:
            yield from self.base
        yield from self._added_members

    def overlay_size(self):
        """Total overlay volume (additions + tombstones) — the serving
        layer's rebase trigger: when this grows past a fraction of the base,
        publishing a fresh frozen snapshot is cheaper than filtering."""
        return len(self._added_members) + len(self._removed)

    def acquire(self):
        """Take one epoch reference (the base is *not* acquired here — the
        epoch manager tracks base and overlay references separately)."""
        self.refs += 1
        return self.refs

    def release(self):
        if self.refs > 0:
            self.refs -= 1
        return self.refs

    def facts(self, name, arity):
        result = [atom for atom in self.base.facts(name, arity)
                  if atom not in self._removed]
        bucket = self._added.get((name, arity))
        if bucket:
            result.extend(bucket)
        return result

    def fetch(self, name, arity, positions, key):
        facts, exact = self.base.fetch(name, arity, positions, key)
        removed = self._removed
        if removed:
            facts = [atom for atom in facts if atom not in removed]
        bucket = self._added.get((name, arity))
        if bucket:
            facts = list(facts)
            facts.extend(bucket)
        return facts, exact

    def spill(self, arity, symbol):
        facts, _exact = self.base.spill(arity, symbol)
        removed = self._removed
        if removed:
            facts = [atom for atom in facts if atom not in removed]
        extra = []
        for (name, bucket_arity), bucket in self._added.items():
            if bucket_arity != arity:
                continue
            if symbol is not None and outermost_symbol(name) is not symbol:
                continue
            extra.extend(bucket)
        if extra:
            facts = list(facts)
            facts.extend(extra)
        return facts, False

    def all_facts(self):
        facts, _exact = self.base.all_facts()
        removed = self._removed
        if removed:
            facts = [atom for atom in facts if atom not in removed]
        if self._added_members:
            facts = list(facts)
            facts.extend(self._added_members)
        return facts, False

    def candidates(self, pattern, subst, index_positions=()):
        """Facts that could match ``pattern`` under ``subst`` — the
        higher-order query path of
        :func:`~repro.core.magic.evaluate.answer_from_store`.  The base's
        candidate scan is filtered through the tombstones; the overlay side
        over-approximates by listing every added atom of a compatible shape
        (callers re-match every candidate)."""
        result = [atom for atom in
                  self.base.candidates(pattern, subst, index_positions)
                  if atom not in self._removed]
        if not self._added_members:
            return result
        if isinstance(pattern, App):
            name = subst.apply(pattern.name)
            arity = len(pattern.args)
            if name.is_ground():
                bucket = self._added.get((name, arity))
                if bucket:
                    result.extend(bucket)
            else:
                for (_name, bucket_arity), bucket in self._added.items():
                    if bucket_arity == arity:
                        result.extend(bucket)
        else:
            resolved = subst.apply(pattern) if isinstance(pattern, Var) else pattern
            if isinstance(resolved, Var):
                result.extend(self._added_members)
            else:
                bucket = self._added.get(predicate_indicator(resolved))
                if bucket:
                    result.extend(bucket)
        return result

    def pin_roots(self):
        """Every atom the view can reach, for intern-generation pin sets.
        The base is pinned in full (tombstoned atoms included — they are
        still keys of the view's own sets, and over-pinning a retiring
        layer is bounded by the layer's lifetime)."""
        yield from self.base.pin_roots()
        yield from self._added_members
        yield from self._removed

    def stats(self):
        """Diagnostic summary mirroring :meth:`RelationStore.stats`."""
        base = self.base.stats()
        base.update(
            facts=self._count,
            overlay_added=len(self._added_members),
            overlay_removed=len(self._removed),
        )
        return base


class SignedStore:
    """A mutable indicator-bucketed fact set for maintenance deltas.

    :class:`~repro.db.maintenance.Delta` records every fact that flips truth
    value during an update; with a full :class:`RelationStore` each record
    pays membership-set, support-count and index bookkeeping that a delta
    never uses.  This store keeps one ``{atom: None}`` dict per indicator —
    O(1) add/remove/membership — and serves the register executor's fetch
    protocol by listing the relevant bucket.
    """

    __slots__ = ("_buckets", "_count")

    def __init__(self):
        self._buckets = {}
        self._count = 0

    def __len__(self):
        return self._count

    def __iter__(self):
        for bucket in self._buckets.values():
            yield from bucket

    def __contains__(self, atom):
        indicator = (atom.name, len(atom.args)) if type(atom) is App else (atom, -1)
        bucket = self._buckets.get(indicator)
        return bucket is not None and atom in bucket

    def add(self, atom):
        indicator = (atom.name, len(atom.args)) if type(atom) is App else (atom, -1)
        bucket = self._buckets.setdefault(indicator, {})
        if atom in bucket:
            return False
        bucket[atom] = None
        self._count += 1
        return True

    def remove(self, atom):
        indicator = (atom.name, len(atom.args)) if type(atom) is App else (atom, -1)
        bucket = self._buckets.get(indicator)
        if bucket is None or atom not in bucket:
            return False
        del bucket[atom]
        if not bucket:
            del self._buckets[indicator]
        self._count -= 1
        return True

    def has_facts(self, name, arity):
        return (name, arity) in self._buckets

    def pin_roots(self):
        """Every recorded atom, for intern-generation pin sets (a caller
        holding a maintenance delta across a collection pins it so the
        flipped facts keep their canonical identity)."""
        for bucket in self._buckets.values():
            yield from bucket

    def fetch(self, name, arity, positions, key):
        bucket = self._buckets.get((name, arity))
        # Listed (not iterated live) because callers may record into the
        # delta while a plan over it is still running.
        return (list(bucket) if bucket else ()), True

    def spill(self, arity, symbol):
        result = []
        for (name, bucket_arity), bucket in self._buckets.items():
            if bucket_arity != arity:
                continue
            if symbol is not None and outermost_symbol(name) is not symbol:
                continue
            result.extend(bucket)
        return result, False

    def all_facts(self):
        result = []
        for bucket in self._buckets.values():
            result.extend(bucket)
        return result, False


class RelationStore:
    """A database of ground atoms partitioned into indexed relations."""

    __slots__ = ("_relations", "_by_arity", "_members", "_count", "_supports",
                 "_frozen", "refs")

    def __init__(self, facts=()):
        self._relations = {}
        self._by_arity = {}
        self._members = set()
        self._count = 0
        # atom -> number of supports (derivations / assertions); every stored
        # atom has an entry, plain add() gives exactly one support.
        self._supports = {}
        self._frozen = False
        #: Epoch refcount (see :meth:`acquire`); 0 outside the serving layer.
        self.refs = 0
        for atom in facts:
            self.add(atom)

    def __len__(self):
        return self._count

    def __contains__(self, atom):
        return atom in self._members

    def __iter__(self):
        return iter(self._members)

    # -- snapshot / epoch support -------------------------------------------

    def freeze(self):
        """Make the store immutable: every later mutator raises
        :class:`~repro.hilog.errors.FrozenStoreError`.  Reads — including
        first-use lazy index building, which is idempotent over the frozen
        fact set — stay legal, so frozen stores are safe to share across
        concurrent reader threads.  Returns ``self`` for chaining."""
        self._frozen = True
        return self

    @property
    def frozen(self):
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def snapshot(self):
        """An O(n) structural copy of the current facts (no indexes, no
        support counts — snapshots are read views, the serving layer freezes
        them immediately).  Indexes rebuild lazily on the copy's own first
        lookups, so a snapshot never shares mutable state with its source."""
        clone = RelationStore.__new__(RelationStore)
        clone._members = set(self._members)
        clone._count = self._count
        clone._supports = {}
        clone._relations = {}
        clone._by_arity = {}
        clone._frozen = False
        clone.refs = 0
        for indicator, relation in self._relations.items():
            copy = Relation(indicator)
            copy.facts = dict(relation.facts)
            clone._relations[indicator] = copy
            clone._by_arity.setdefault(indicator[1], []).append(copy)
        return clone

    def acquire(self):
        """Take one epoch reference (the serving layer's layer-liveness
        bookkeeping — see :mod:`repro.serve.epochs`); returns the new count."""
        self.refs += 1
        return self.refs

    def release(self):
        """Drop one epoch reference; returns the new count (never below 0)."""
        if self.refs > 0:
            self.refs -= 1
        return self.refs

    def add(self, atom):
        """Insert a ground atom; return ``True`` when it was new.

        Set semantics: inserting a present atom is a no-op (its support
        count is *not* incremented — use :meth:`add_support` for counting).
        """
        if atom in self._members:
            return False
        if self._frozen:
            raise FrozenStoreError("cannot add %r to a frozen store" % (atom,))
        if not atom.is_ground():
            raise GroundingError("cannot store non-ground atom %r" % (atom,))
        self._members.add(atom)
        self._count += 1
        self._supports[atom] = 1
        indicator = predicate_indicator(atom)
        relation = self._relations.get(indicator)
        if relation is None:
            relation = Relation(indicator)
            self._relations[indicator] = relation
            self._by_arity.setdefault(indicator[1], []).append(relation)
        relation.add(atom)
        return True

    def remove(self, atom):
        """Delete an atom (whatever its support count); return ``True`` when
        it was present.  Every materialized index is kept current."""
        if atom not in self._members:
            return False
        if self._frozen:
            raise FrozenStoreError("cannot remove %r from a frozen store" % (atom,))
        self._members.discard(atom)
        self._count -= 1
        del self._supports[atom]
        self._relations[predicate_indicator(atom)].remove(atom)
        return True

    def support(self, atom):
        """The support count of an atom (0 when absent)."""
        return self._supports.get(atom, 0)

    def add_support(self, atom, count=1):
        """Add ``count`` supports to an atom; return ``True`` when the atom
        became present (was previously unsupported)."""
        if count <= 0:
            raise ValueError("support increment must be positive")
        if self._frozen:
            raise FrozenStoreError("cannot add support on a frozen store")
        if atom in self._members:
            self._supports[atom] += count
            return False
        self.add(atom)
        self._supports[atom] = count
        return True

    def remove_support(self, atom, count=1):
        """Remove ``count`` supports from an atom; return ``True`` when the
        atom's last support disappeared (the atom was deleted).  Raises
        :class:`GroundingError` when the atom has fewer supports than
        ``count`` — the counting invariant was broken."""
        if count <= 0:
            raise ValueError("support decrement must be positive")
        if self._frozen:
            raise FrozenStoreError("cannot remove support on a frozen store")
        current = self._supports.get(atom, 0)
        if current < count:
            raise GroundingError(
                "removing %d supports from %r which has only %d (counting "
                "invariant violated)" % (count, atom, current)
            )
        if current == count:
            self.remove(atom)
            return True
        self._supports[atom] = current - count
        return False

    def relation(self, name, arity):
        """The :class:`Relation` for an indicator, or ``None``."""
        return self._relations.get((name, arity))

    def facts(self, name, arity):
        """All facts of one indicator (empty list when absent)."""
        relation = self._relations.get((name, arity))
        return list(relation.facts) if relation is not None else []

    def has_facts(self, name, arity):
        """``True`` when the indicator has at least one fact."""
        relation = self._relations.get((name, arity))
        return relation is not None and len(relation) > 0

    def relations(self):
        """All relations, in first-insertion order of their indicators."""
        return list(self._relations.values())

    def pin_roots(self):
        """The terms this store retains, for intern-generation pin sets
        (:func:`repro.hilog.terms.collect_generation`): every stored atom,
        plus the indicator name of every relation ever created — an emptied
        relation keeps its (possibly generational) name term alive so it can
        be reused with its indexes intact, and that reference must not
        dangle across a collection."""
        yield from self._members
        for name, _arity in self._relations:
            yield name

    def atoms(self):
        """Every stored atom (relation by relation, insertion order)."""
        for relation in self._relations.values():
            for atom in relation.facts:
                yield atom

    # -- register-executor fetch protocol -----------------------------------
    #
    # The register executor (repro.engine.seminaive.engine) resolves its own
    # indicators and index keys from registers, so these entry points skip
    # the Substitution machinery entirely.  Each returns ``(facts, exact)``
    # where ``exact`` promises every fact is an application of the requested
    # indicator (letting the executor skip per-candidate name/arity checks).
    # Because terms are hash-consed, indicator and index keys compare by
    # identity — every probe is one hash lookup over interned pointers.

    def fetch(self, name, arity, positions, key):
        """Facts of the ``(name, arity)`` indicator whose arguments at
        ``positions`` equal ``key`` (both precomputed by the compiler)."""
        relation = self._relations.get((name, arity))
        if relation is None:
            return (), True
        if positions:
            return relation.lookup(positions, key), True
        return list(relation.facts), True

    def spill(self, arity, symbol):
        """Facts of every relation of ``arity``, narrowed to relations whose
        name has outermost symbol ``symbol`` when one is known (the
        higher-order non-ground-name path)."""
        result = []
        for relation in self._by_arity.get(arity, ()):
            if symbol is not None and outermost_symbol(relation.indicator[0]) is not symbol:
                continue
            result.extend(relation.facts)
        return result, False

    def all_facts(self):
        """Every stored atom (the unbound propositional-variable scan)."""
        return list(self._members), False

    def candidates(self, pattern, subst, index_positions=()):
        """Facts that could match ``pattern`` under ``subst``.

        ``index_positions`` names the argument positions of ``pattern`` that
        are ground once ``subst`` is applied (precomputed by the join
        planner); when the pattern's predicate name is also ground the lookup
        is a single hash probe.  Otherwise the spill path scans the relations
        of the pattern's arity, narrowed by the outermost symbol of the name
        when one exists.
        """
        if not isinstance(pattern, App):
            # Propositional pattern: a ground symbol, or a bare variable
            # (which can match any stored atom — full spill).
            resolved = subst.apply(pattern) if isinstance(pattern, Var) else pattern
            if isinstance(resolved, Var):
                return list(self._members)
            relation = self._relations.get(predicate_indicator(resolved))
            return list(relation.facts) if relation is not None else ()

        name = subst.apply(pattern.name)
        arity = len(pattern.args)
        if name.is_ground():
            relation = self._relations.get((name, arity))
            if relation is None:
                return ()
            if index_positions:
                key = tuple(subst.apply(pattern.args[i]) for i in index_positions)
                if all(part.is_ground() for part in key):
                    if len(index_positions) == 1:
                        return relation.lookup(index_positions, key[0])
                    return relation.lookup(index_positions, key)
            return list(relation.facts)

        # Spill: the predicate name is still non-ground.  Narrow by the
        # outermost symbol when the name has one (e.g. ``winning(M)``), else
        # scan every relation of the right arity.
        symbol = outermost_symbol(name)
        result = []
        for relation in self._by_arity.get(arity, ()):
            if symbol is not None and outermost_symbol(relation.indicator[0]) != symbol:
                continue
            result.extend(relation.facts)
        return result

    def stats(self):
        """Diagnostic summary: relation count, fact count, index count."""
        return {
            "relations": len(self._relations),
            "facts": self._count,
            "indexes": sum(r.index_count() for r in self._relations.values()),
        }
