"""Delta-driven semi-naive evaluation over indexed relation stores.

This is the deductive-database evaluation architecture the paper's
Section 6.1 efficiency claims presume: instead of materializing a ground
program and running the Dowling–Gallier fixpoint over it (the
:mod:`repro.engine.grounding` path), rules are compiled into join plans
(:mod:`repro.engine.seminaive.plan`) and evaluated bottom-up, stratum by
stratum, with work per iteration proportional to the *new* derivations of
the previous iteration.

Two program classes are supported:

* **Definite programs** (no negation, no aggregates) — evaluated as a
  single stratum; predicate names may be arbitrary HiLog terms, including
  non-ground ones (the relation store's spill path handles ``M(X, Y)``
  subgoals).

* **Stratified programs** — every predicate name must be ground, and the
  dependency graph over predicate indicators must have no cycle through
  negation or aggregation.  Negative subgoals and aggregate conditions are
  then evaluated only against fully-computed lower strata, which makes the
  least fixpoint of each stratum the perfect model (for these programs the
  well-founded model is total and coincides with it, and with the unique
  stable model).

Programs outside these classes — variable predicate names combined with
negation (Example 6.3's parameterized games), recursion through aggregation
(the parts-explosion component) — raise :class:`SeminaiveUnsupported`;
callers such as :func:`repro.core.modular.modularly_stratified_for_hilog`
catch it and fall back to the grounding oracle.
"""

from __future__ import annotations

from typing import FrozenSet, NamedTuple, Tuple

from repro.engine.aggregates import evaluate_aggregate
from repro.engine.builtins import solve_builtin
from repro.engine.interpretation import Interpretation
from repro.engine.seminaive.plan import FETCH, NEGATION, PlanError, compile_rule
from repro.engine.seminaive.relation import RelationStore, predicate_indicator
from repro.hilog.errors import GroundingError, HiLogError
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Term, predicate_name
from repro.hilog.unify import match
from repro.normal.depgraph import DependencyGraph


class SeminaiveUnsupported(HiLogError):
    """The program is outside the class the semi-naive engine handles
    (non-ground predicate names with negation, a cycle through negation or
    aggregation, or an unschedulable rule body).  Callers with a grounding
    fallback should catch this and take the slow path."""


class SeminaiveResult(NamedTuple):
    """Outcome of a semi-naive evaluation."""

    #: Every atom true in the computed model (seeds included).
    true: FrozenSet[Term]
    #: The atoms derived by rules (``true`` minus the seeded facts).
    derived: FrozenSet[Term]
    #: Predicate-name terms settled per stratum, lowest first.
    strata: Tuple[FrozenSet[Term], ...]
    #: Total number of delta iterations across all strata.
    iterations: int
    #: The final relation store (exposes index/relation statistics).
    store: RelationStore


_EMPTY = Substitution()


def _literal_indicator(atom):
    """The ``(name, arity)`` indicator of a rule atom, or ``None`` when the
    predicate name is not ground (higher-order position)."""
    name = predicate_name(atom)
    if not name.is_ground():
        return None
    if isinstance(atom, App):
        return (name, len(atom.args))
    return (atom, -1)


def _stratify(program):
    """Assign each proper rule to a stratum.

    Returns ``(strata, recursive)`` where ``strata`` is a list of rule lists
    in ascending level order and ``recursive`` maps a rule to the set of
    body indicators evaluated in the same stratum (the delta-variant sites).
    Raises :class:`SeminaiveUnsupported` when the program is not stratified
    at the predicate-indicator level.
    """
    proper = [rule for rule in program.rules if not rule.is_fact()]

    if not program.has_negation() and not program.has_aggregates():
        # Definite program: one stratum, every positive subgoal is
        # potentially recursive (names may be non-ground, so the dependency
        # graph cannot be trusted to separate anything).
        return [proper], {rule: None for rule in proper}

    graph = DependencyGraph()
    head_indicators = {}
    body_indicators = {}
    for rule in proper:
        head = _literal_indicator(rule.head)
        if head is None:
            raise SeminaiveUnsupported(
                "rule %r has a non-ground head predicate name; semi-naive "
                "stratification needs ground indicators" % (rule,)
            )
        head_indicators[rule] = head
        graph.add_node(head)
        indicators = []
        for literal in rule.body:
            if literal.is_builtin():
                indicators.append(None)
                continue
            indicator = _literal_indicator(literal.atom)
            if indicator is None:
                raise SeminaiveUnsupported(
                    "subgoal %r of rule %r has a non-ground predicate name in "
                    "a program with negation/aggregation" % (literal.atom, rule)
                )
            indicators.append(indicator)
            graph.add_edge(head, indicator, negative=literal.negative)
        for spec in rule.aggregates:
            indicator = _literal_indicator(spec.condition)
            if indicator is None:
                raise SeminaiveUnsupported(
                    "aggregate condition %r has a non-ground predicate name"
                    % (spec.condition,)
                )
            indicators.append(indicator)
            # Aggregation behaves like negation for stratification: the
            # condition's extension must be complete before the fold runs.
            graph.add_edge(head, indicator, negative=True)
        body_indicators[rule] = indicators
    for rule in program.rules:
        if rule.is_fact() and rule.head.is_ground():
            graph.add_node(predicate_indicator(rule.head))

    components, component_of, _edges = graph.condensation()
    for source, target in graph.edges():
        if graph.is_negative_edge(source, target) and \
                component_of[source] == component_of[target]:
            raise SeminaiveUnsupported(
                "recursion through negation/aggregation at %r; the program is "
                "not stratified" % (source,)
            )

    # Components arrive in reverse topological order (dependencies first),
    # so one pass assigns levels: +1 across negative/aggregate edges.
    level_of_component = {}
    for index, component in enumerate(components):
        level = 0
        for node in component:
            for successor in graph.successors(node):
                target = component_of[successor]
                if target == index:
                    continue
                bump = 1 if graph.is_negative_edge(node, successor) else 0
                level = max(level, level_of_component[target] + bump)
        level_of_component[index] = level

    def indicator_level(indicator):
        return level_of_component[component_of[indicator]]

    by_level = {}
    recursive = {}
    for rule in proper:
        level = indicator_level(head_indicators[rule])
        by_level.setdefault(level, []).append(rule)
        same_level = set()
        for indicator in body_indicators[rule]:
            if indicator is not None and indicator_level(indicator) == level:
                same_level.add(indicator)
        recursive[rule] = same_level

    strata = [by_level[level] for level in sorted(by_level)]
    return strata, recursive


def _delta_sites(rule, recursive_indicators):
    """Body indices of positive literals that read the current stratum."""
    sites = []
    for index, literal in enumerate(rule.body):
        if not literal.positive or literal.is_builtin():
            continue
        if recursive_indicators is None:
            sites.append(index)
            continue
        indicator = _literal_indicator(literal.atom)
        if indicator is not None and indicator in recursive_indicators:
            sites.append(index)
    return sites


def _run_steps(plan, store, delta_store, position, subst):
    """Yield every substitution satisfying the plan's steps from ``position``."""
    if position == len(plan.steps):
        yield subst
        return
    step = plan.steps[position]
    if step.kind == FETCH:
        source = delta_store if step.from_delta else store
        for fact in source.candidates(step.literal.atom, subst, step.index_positions):
            extended = match(step.literal.atom, fact, subst)
            if extended is not None:
                yield from _run_steps(plan, store, delta_store, position + 1, extended)
        return
    if step.kind == NEGATION:
        atom = subst.apply(step.literal.atom)
        if not atom.is_ground():
            raise GroundingError(
                "negative subgoal %r not ground at evaluation time (rule %r "
                "flounders)" % (atom, plan.rule)
            )
        if atom not in store:
            yield from _run_steps(plan, store, delta_store, position + 1, subst)
        return
    # BUILTIN: the planner only schedules builtins once they are evaluable.
    for solution in solve_builtin(step.literal.atom, subst):
        yield from _run_steps(plan, store, delta_store, position + 1, solution)


def _derive(plan, store, delta_store):
    """Yield the ground heads derivable from ``plan`` against the store."""
    for subst in _run_steps(plan, store, delta_store, 0, _EMPTY):
        currents = [subst]
        for literal in plan.deferred_builtins:
            nexts = []
            for candidate in currents:
                nexts.extend(solve_builtin(literal.atom, candidate))
            currents = nexts
            if not currents:
                break
        for current in currents:
            finals = [current]
            for astep in plan.aggregates:
                extension = store.facts(astep.condition_name, astep.condition_arity)
                nexts = []
                for candidate in finals:
                    nexts.extend(
                        evaluate_aggregate(
                            astep.spec, candidate, extension, group_vars=astep.group_vars
                        )
                    )
                finals = nexts
                if not finals:
                    break
            for final in finals:
                head = final.apply(plan.rule.head)
                if not head.is_ground():
                    raise GroundingError(
                        "derived head %r is not ground; rule %r is not range "
                        "restricted" % (head, plan.rule)
                    )
                yield head


def _check_head(head, max_facts, max_term_depth, store):
    if max_term_depth is not None and head.depth() > max_term_depth:
        raise GroundingError(
            "derived atom %r exceeds term depth %d; the program is probably "
            "not strongly range restricted (cf. Example 5.2)" % (head, max_term_depth)
        )
    if len(store) >= max_facts:
        raise GroundingError(
            "semi-naive evaluation exceeded %d facts; the program is "
            "probably not range restricted" % max_facts
        )


def _evaluate_stratum(rules, recursive, store, max_facts, max_term_depth):
    """Run the semi-naive fixpoint of one stratum.  Returns the iteration
    count; new facts go straight into ``store``."""
    try:
        base_plans = [(rule, compile_rule(rule)) for rule in rules]
        variant_plans = []
        for rule in rules:
            for site in _delta_sites(rule, recursive[rule]):
                variant_plans.append((rule, compile_rule(rule, delta_index=site)))
    except PlanError as error:
        raise SeminaiveUnsupported(str(error))

    delta = []
    for _rule, plan in base_plans:
        for head in _derive(plan, store, None):
            _check_head(head, max_facts, max_term_depth, store)
            if store.add(head):
                delta.append(head)

    iterations = 1
    while delta:
        iterations += 1
        delta_store = RelationStore(delta)
        delta = []
        for _rule, plan in variant_plans:
            for head in _derive(plan, store, delta_store):
                _check_head(head, max_facts, max_term_depth, store)
                if store.add(head):
                    delta.append(head)
    return iterations


def seminaive_evaluate(program, extra_facts=(), max_facts=1000000, max_term_depth=None):
    """Evaluate ``program`` bottom-up with semi-naive iteration.

    ``extra_facts`` seeds the store with additional ground atoms assumed
    true (used by the modular evaluator to pass settled lower components
    in).  Returns a :class:`SeminaiveResult`; the computed ``true`` set is
    the perfect model of the (stratified) program — everything outside it is
    false under the closed-world reading the paper's unfoundedness arguments
    justify for range-restricted programs.

    Raises :class:`SeminaiveUnsupported` for programs outside the supported
    class and :class:`GroundingError` for unsafe (non-range-restricted)
    rules, mirroring the grounding path's behaviour.
    """
    strata, recursive = _stratify(program)

    store = RelationStore()
    seeds = set()
    for atom in extra_facts:
        if not atom.is_ground():
            raise GroundingError("extra fact %r is not ground" % (atom,))
        store.add(atom)
        seeds.add(atom)
    for rule in program.rules:
        if rule.is_fact():
            if not rule.head.is_ground():
                raise GroundingError("fact %r is not ground" % (rule.head,))
            if store.add(rule.head):
                seeds.add(rule.head)

    iterations = 0
    strata_names = []
    for rules in strata:
        iterations += _evaluate_stratum(rules, recursive, store, max_facts, max_term_depth)
        strata_names.append(frozenset(predicate_name(rule.head) for rule in rules))

    true = frozenset(store)
    return SeminaiveResult(
        true=true,
        derived=true - seeds,
        strata=tuple(strata_names),
        iterations=iterations,
        store=store,
    )


def seminaive_perfect_model(program, **kwargs):
    """The perfect model of a stratified program as a (total)
    :class:`Interpretation`: the derived atoms are true, everything else is
    false by closed world."""
    result = seminaive_evaluate(program, **kwargs)
    return Interpretation(true=result.true, base=result.true)
