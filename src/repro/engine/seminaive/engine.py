"""Delta-driven semi-naive evaluation over indexed relation stores.

This is the deductive-database evaluation architecture the paper's
Section 6.1 efficiency claims presume: instead of materializing a ground
program and running the Dowling–Gallier fixpoint over it (the
:mod:`repro.engine.grounding` path), rules are compiled into join plans
(:mod:`repro.engine.seminaive.plan`) and evaluated bottom-up, stratum by
stratum, with work per iteration proportional to the *new* derivations of
the previous iteration.

Two program classes are supported:

* **Definite programs** (no negation, no aggregates) — evaluated as a
  single stratum; predicate names may be arbitrary HiLog terms, including
  non-ground ones (the relation store's spill path handles ``M(X, Y)``
  subgoals).

* **Stratified programs** — every predicate name must be ground, and the
  dependency graph over predicate indicators must have no cycle through
  negation or aggregation.  Negative subgoals and aggregate conditions are
  then evaluated only against fully-computed lower strata, which makes the
  least fixpoint of each stratum the perfect model (for these programs the
  well-founded model is total and coincides with it, and with the unique
  stable model).

Programs outside these classes — variable predicate names combined with
negation (Example 6.3's parameterized games), recursion through aggregation
(the parts-explosion component) — raise :class:`SeminaiveUnsupported`;
callers such as :func:`repro.core.modular.modularly_stratified_for_hilog`
catch it and fall back to the grounding oracle.  Ground-indicator programs
with a cycle through negation (win/move games over cyclic graphs) sit in
between: their three-valued well-founded model is computed semi-naively by
the alternating-fixpoint evaluator in
:mod:`repro.engine.seminaive.wellfounded`, built from this module's
:func:`stratify_program` (``allow_unstratified=True``),
:func:`evaluate_stratum` (``negation_store=`` phase hooks) and
:func:`run_plan`.

Beyond one-shot evaluation the module exposes the pieces an *incremental*
view-maintenance layer (:mod:`repro.db`) composes: :func:`stratify_program`
(optionally one stratum per strongly connected component),
:func:`compile_stratum` (the base and delta join plans of a stratum),
:func:`evaluate_stratum` with an *injected delta* (re-run a settled stratum
semi-naively from a batch of newly arrived facts), and :class:`PlanSources`
(a pluggable resolver from join steps to fact sources, so maintenance
algorithms can stage "old"/"new"/"delta" database states per body
position).
"""

from __future__ import annotations

import contextvars as _contextvars

from time import perf_counter as _perf_counter
from typing import Dict, FrozenSet, NamedTuple, Optional, Tuple

from repro.obs.trace import current_tracer

from repro.engine.aggregates import evaluate_aggregate
from repro.engine.builtins import solve_builtin
from repro.engine.interpretation import Interpretation
from repro.engine.seminaive.plan import (
    N_IDENT,
    N_WRITE,
    PlanError,
    R_BUILTIN,
    R_FETCH,
    R_NEG,
    build_term,
    compile_rule,
)
from repro.engine.seminaive.relation import (
    DeltaStore,
    RelationStore,
    predicate_indicator,
)
from repro.hilog.errors import GroundingError, HiLogError
from repro.hilog.subst import Substitution
from repro.hilog.terms import (
    App,
    Num,
    Sym,
    Term,
    Var,
    intern_app,
    predicate_name,
    register_flush_hook,
)
from repro.normal.depgraph import DependencyGraph


class SeminaiveUnsupported(HiLogError):
    """The program is outside the class the semi-naive engine handles
    (non-ground predicate names with negation, a cycle through negation or
    aggregation, or an unschedulable rule body).  Callers with a grounding
    fallback should catch this and take the slow path."""


class SeminaiveResult(NamedTuple):
    """Outcome of a semi-naive evaluation."""

    #: Every atom true in the computed model (seeds included).
    true: FrozenSet[Term]
    #: The atoms derived by rules (``true`` minus the seeded facts).
    derived: FrozenSet[Term]
    #: Predicate-name terms settled per stratum, lowest first.
    strata: Tuple[FrozenSet[Term], ...]
    #: Total number of delta iterations across all strata.
    iterations: int
    #: The final relation store (exposes index/relation statistics).
    store: RelationStore


class Stratification(NamedTuple):
    """A stratum assignment of a program's proper rules.

    ``strata`` lists the rules of each stratum in ascending level order;
    ``recursive`` maps each rule to the set of body indicators evaluated in
    the same stratum (the delta-variant sites), or ``None`` for the definite
    single-stratum case where every positive subgoal is potentially
    recursive.  ``unstratified`` names the stratum indices containing a
    negation-SCC — a component with a cycle through negation — which only
    the alternating-fixpoint evaluator
    (:mod:`repro.engine.seminaive.wellfounded`) can evaluate; it is empty
    unless :func:`stratify_program` ran with ``allow_unstratified=True``.
    """

    strata: Tuple[Tuple, ...]
    recursive: Dict
    unstratified: FrozenSet = frozenset()


def _literal_indicator(atom):
    """The ``(name, arity)`` indicator of a rule atom, or ``None`` when the
    predicate name is not ground (higher-order position)."""
    name = predicate_name(atom)
    if not name.is_ground():
        return None
    if isinstance(atom, App):
        return (name, len(atom.args))
    return (atom, -1)


def _single_stratum(proper):
    """Definite program: one stratum, every positive subgoal is potentially
    recursive (names may be non-ground, so the dependency graph cannot be
    trusted to separate anything)."""
    return Stratification((tuple(proper),), {rule: None for rule in proper})


def _graph_stratification(program, proper, by_component, allow_unstratified=False):
    """Stratify via the predicate-indicator dependency graph.

    Raises :class:`SeminaiveUnsupported` when an indicator is non-ground or
    a cycle runs through negation/aggregation.  With ``by_component`` every
    strongly connected component becomes its own stratum (the finest valid
    assignment, used by incremental maintenance so non-recursive components
    can be maintained by counting); otherwise levels are bumped only across
    negative/aggregate edges, as the one-shot evaluator prefers.

    With ``allow_unstratified`` a cycle through *negation* no longer raises:
    the affected strata are reported through
    :attr:`Stratification.unstratified` for the alternating-fixpoint
    well-founded evaluator.  Cycles through *aggregation* always raise —
    three-valued aggregation is outside every engine here.
    """
    graph = DependencyGraph()
    aggregate_pairs = set()
    head_indicators = {}
    body_indicators = {}
    for rule in proper:
        head = _literal_indicator(rule.head)
        if head is None:
            raise SeminaiveUnsupported(
                "rule %r has a non-ground head predicate name; semi-naive "
                "stratification needs ground indicators" % (rule,)
            )
        head_indicators[rule] = head
        graph.add_node(head)
        indicators = []
        for literal in rule.body:
            if literal.is_builtin():
                indicators.append(None)
                continue
            indicator = _literal_indicator(literal.atom)
            if indicator is None:
                raise SeminaiveUnsupported(
                    "subgoal %r of rule %r has a non-ground predicate name in "
                    "a stratified program" % (literal.atom, rule)
                )
            indicators.append(indicator)
            graph.add_edge(head, indicator, negative=literal.negative)
        for spec in rule.aggregates:
            indicator = _literal_indicator(spec.condition)
            if indicator is None:
                raise SeminaiveUnsupported(
                    "aggregate condition %r has a non-ground predicate name"
                    % (spec.condition,)
                )
            indicators.append(indicator)
            # Aggregation behaves like negation for stratification: the
            # condition's extension must be complete before the fold runs.
            graph.add_edge(head, indicator, negative=True)
            aggregate_pairs.add((head, indicator))
        body_indicators[rule] = indicators
    for rule in program.rules:
        if rule.is_fact() and rule.head.is_ground():
            graph.add_node(predicate_indicator(rule.head))

    components, component_of, _edges = graph.condensation()
    unstratified_components = set()
    for source, target in graph.edges():
        if graph.is_negative_edge(source, target) and \
                component_of[source] == component_of[target]:
            if (source, target) in aggregate_pairs:
                raise SeminaiveUnsupported(
                    "recursion through aggregation at %r; no engine here "
                    "evaluates three-valued aggregation" % (source,)
                )
            if not allow_unstratified:
                raise SeminaiveUnsupported(
                    "recursion through negation/aggregation at %r; the program is "
                    "not stratified" % (source,)
                )
            unstratified_components.add(component_of[source])

    # Components arrive in reverse topological order (dependencies first).
    if by_component:
        # One stratum per SCC: the arrival index is already a valid level.
        level_of_component = {index: index for index in range(len(components))}
    else:
        # One pass assigns levels: +1 across negative/aggregate edges.
        level_of_component = {}
        for index, component in enumerate(components):
            level = 0
            for node in component:
                for successor in graph.successors(node):
                    target = component_of[successor]
                    if target == index:
                        continue
                    bump = 1 if graph.is_negative_edge(node, successor) else 0
                    level = max(level, level_of_component[target] + bump)
            level_of_component[index] = level

    def indicator_level(indicator):
        return level_of_component[component_of[indicator]]

    by_level = {}
    recursive = {}
    unstratified_levels = set()
    for rule in proper:
        head_component = component_of[head_indicators[rule]]
        level = level_of_component[head_component]
        by_level.setdefault(level, []).append(rule)
        if head_component in unstratified_components:
            unstratified_levels.add(level)
        same_level = set()
        for indicator in body_indicators[rule]:
            if indicator is not None and indicator_level(indicator) == level:
                same_level.add(indicator)
        recursive[rule] = same_level

    levels = sorted(by_level)
    strata = tuple(tuple(by_level[level]) for level in levels)
    unstratified = frozenset(
        index for index, level in enumerate(levels) if level in unstratified_levels
    )
    return Stratification(strata, recursive, unstratified)


def stratify_program(program, by_component=False, allow_unstratified=False):
    """Assign each proper rule of ``program`` to a stratum.

    Returns a :class:`Stratification`.  Definite programs normally form a
    single stratum; with ``by_component=True`` the graph-based assignment is
    attempted first even for definite programs (falling back to the single
    stratum when predicate names are non-ground), so callers that maintain
    models incrementally get the finest stratification available.  Raises
    :class:`SeminaiveUnsupported` when the program mixes negation or
    aggregation with non-ground predicate names, or is not stratified at the
    predicate-indicator level.

    With ``allow_unstratified=True`` a cycle through negation is not an
    error: the negation-SCC strata are returned (and flagged through
    :attr:`Stratification.unstratified`) for the alternating-fixpoint
    evaluator of :mod:`repro.engine.seminaive.wellfounded`.  Cycles through
    aggregation still raise.
    """
    proper = [rule for rule in program.rules if not rule.is_fact()]
    definite = not program.has_negation() and not program.has_aggregates()
    if definite:
        if by_component:
            try:
                return _graph_stratification(program, proper, by_component=True)
            except SeminaiveUnsupported:
                return _single_stratum(proper)
        return _single_stratum(proper)
    return _graph_stratification(program, proper, by_component, allow_unstratified)


def _delta_sites(rule, recursive_indicators):
    """Body indices of positive literals that read the current stratum."""
    sites = []
    for index, literal in enumerate(rule.body):
        if not literal.positive or literal.is_builtin():
            continue
        if recursive_indicators is None:
            sites.append(index)
            continue
        indicator = _literal_indicator(literal.atom)
        if indicator is not None and indicator in recursive_indicators:
            sites.append(index)
    return sites


class PlanSources:
    """Resolves join-plan steps to fact sources.

    The default implementation reads fetches from ``store`` (or the
    per-iteration ``delta`` store for delta-marked steps) and answers
    negation checks against ``store``.  Maintenance algorithms subclass this
    to stage different database states (old / new / delta) per body
    position — see :mod:`repro.db.maintenance`.  A source must implement
    the fetch protocol of :class:`~repro.engine.seminaive.relation.RelationStore`
    (``fetch`` / ``spill`` / ``all_facts`` / ``__contains__``).

    ``negation`` redirects the membership test of negation steps to a
    different store: the alternating-fixpoint well-founded evaluator
    (:mod:`repro.engine.seminaive.wellfounded`) resolves each phase's
    negative subgoals against the *opposite* phase's store — ``not a``
    holds in the overestimate exactly when ``a`` is not proven true, and in
    the underestimate exactly when ``a`` is not even possibly true.
    """

    __slots__ = ("store", "delta", "negation")

    def __init__(self, store, delta=None, negation=None):
        self.store = store
        self.delta = delta
        self.negation = store if negation is None else negation

    def select(self, step):
        """The fact source a fetch step reads from."""
        return self.delta if step.from_delta else self.store

    def holds(self, atom):
        """Membership test used by negation steps."""
        return atom in self.negation

    def aggregate_extension(self, name, arity):
        """The extension an aggregate condition folds over."""
        return self.store.facts(name, arity)


class _StatsCounters:
    """The plain mutable cell behind :class:`ExecutionStats` — one per
    execution context, handed to the register executor's hot loops so an
    increment is a slot write, not a property call."""

    __slots__ = ("fetches", "candidates", "alternations")

    def __init__(self):
        self.fetches = 0
        self.candidates = 0
        self.alternations = 0


#: The context-local counter cell.  ``contextvars`` gives every thread (and
#: every asyncio task) its own slot, so concurrent readers in the serving
#: subsystem (:mod:`repro.serve`) accumulate independently instead of
#: interleaving ``+=`` read-modify-write cycles on shared integers.
_STATS_VAR = _contextvars.ContextVar("repro_execution_stats")


class ExecutionStats:
    """Cheap counters over the register executor, for benchmarks:
    ``fetches`` counts index probes, ``candidates`` the facts those probes
    returned (the join-candidate volume the indexes could not avoid), and
    ``alternations`` the outer over/under rounds the alternating-fixpoint
    well-founded evaluator ran (0 for purely stratified evaluations).

    The counters are **context-local** (per thread / per asyncio task, via
    :mod:`contextvars`): two threads evaluating concurrently each see only
    their own counts, so parallel readers never corrupt each other's
    numbers.  The module-level :data:`EXECUTION_STATS` is a facade whose
    attribute reads/writes and :meth:`snapshot`/:meth:`reset` act on the
    calling context's cell — single-threaded callers (the benchmarks, the
    tests) observe exactly the old global-counter behaviour."""

    # __weakref__ so the intern-table flush hook can register weakly.
    __slots__ = ("__weakref__",)

    @staticmethod
    def counters():
        """The calling context's mutable counter cell (created on first
        use).  Hot loops hoist this once per fetch instead of paying a
        property dispatch per increment."""
        cell = _STATS_VAR.get(None)
        if cell is None:
            cell = _StatsCounters()
            _STATS_VAR.set(cell)
        return cell

    @property
    def fetches(self):
        return self.counters().fetches

    @fetches.setter
    def fetches(self, value):
        self.counters().fetches = value

    @property
    def candidates(self):
        return self.counters().candidates

    @candidates.setter
    def candidates(self, value):
        self.counters().candidates = value

    @property
    def alternations(self):
        return self.counters().alternations

    @alternations.setter
    def alternations(self, value):
        self.counters().alternations = value

    def snapshot(self):
        cell = self.counters()
        return {
            "fetches": cell.fetches,
            "candidates": cell.candidates,
            "alternations": cell.alternations,
        }

    def diff(self, before):
        """Per-counter deltas accumulated since ``before`` (a
        :meth:`snapshot` dict): measure with ``before = stats.snapshot()``
        ... work ... ``stats.diff(before)``, instead of the historical
        reset-around-measurement dance — which destroyed any outer
        window's counts and could never nest."""
        cell = self.counters()
        return {
            "fetches": cell.fetches - before.get("fetches", 0),
            "candidates": cell.candidates - before.get("candidates", 0),
            "alternations": cell.alternations - before.get("alternations", 0),
        }

    def reset(self):
        cell = self.counters()
        cell.fetches = 0
        cell.candidates = 0
        cell.alternations = 0


#: Module-level execution counters (see :class:`ExecutionStats`).
EXECUTION_STATS = ExecutionStats()

# The counters hold no terms, but a collection marks a measurement
# boundary: flushing them keeps benchmark windows that straddle a
# collection honest (registered weakly; the module keeps the singleton
# alive for the process lifetime).
_EXECUTION_STATS_FLUSH = register_flush_hook(EXECUTION_STATS.reset)


def _outermost_symbol_fast(term):
    """Outermost symbol of a (possibly non-ground) runtime name, or None."""
    while type(term) is App:
        term = term.name
    return term if isinstance(term, Sym) else None


def _struct_match(pattern, value, regs, slot_of):
    """Structural match of a nested argument pattern against a ground value.

    Variable slots reset to ``None`` before the candidate are written on
    first sight; all other variable slots are identity-checked.
    """
    stack = [(pattern, value)]
    while stack:
        part, val = stack.pop()
        if part is val:
            continue
        kind = type(part)
        if kind is Var:
            slot = slot_of[part]
            current = regs[slot]
            if current is None:
                regs[slot] = val
            elif current is not val:
                return False
        elif kind is App and type(val) is App and len(part.args) == len(val.args):
            stack.append((part.name, val.name))
            stack.extend(zip(part.args, val.args))
        else:
            return False
    return True


def _fetch_candidates(op, sources, regs):
    """Resolve a fetch op to ``(facts, exact, runtime_name)``.

    ``exact`` means every returned fact is known to be an application of the
    fetched indicator, so the per-candidate name/arity checks are skipped.
    """
    source = sources.select(op.step)
    prop = op.prop
    if prop is None:
        name = op.const_name
        if name is None:
            name = build_term(op.name_builder, regs)
            if not name.is_ground():
                facts, exact = source.spill(op.arity, _outermost_symbol_fast(name))
                return facts, exact, None
        key_single = op.key_single
        if key_single is not None:
            # Single-position probe: the index is keyed by the bare term
            # (its hash is cached by interning — no tuple on the probe).
            facts, exact = source.fetch(
                name, op.arity, op.positions, regs[key_single]
            )
            return facts, exact, name
        key_slots = op.key_slots
        if key_slots is not None:
            key = tuple(regs[slot] for slot in key_slots)
        elif op.key_builders:
            key = tuple(build_term(builder, regs) for builder in op.key_builders)
        else:
            key = ()
        if op.membership:
            atom = intern_app(name, key)
            return ((atom,) if atom in source else ()), True, name
        if len(key) == 1:
            key = key[0]
        facts, exact = source.fetch(name, op.arity, op.positions, key)
        return facts, exact, name
    if prop[0] == 0:
        # Ground propositional subgoal: pure membership.
        atom = prop[1]
        return ((atom,) if atom in source else ()), True, atom
    slot, bound = prop[1], prop[2]
    if bound:
        atom = regs[slot]
        return ((atom,) if atom in source else ()), True, atom
    facts, exact = source.all_facts()
    return facts, exact, None


def _match_candidate(op, fact, regs, slot_of, exact, runtime_name):
    """Match one candidate fact against a fetch op, writing its output
    registers on success.  *The* per-candidate hot path — shared by the
    generator, collector and satisfiability executors so the match
    semantics cannot drift between them."""
    prop = op.prop
    if prop is not None:
        if prop[0] == 0 or prop[2]:
            return fact is runtime_name
        regs[prop[1]] = fact
        return True
    reset_slots = op.reset_slots
    if reset_slots:
        for slot in reset_slots:
            regs[slot] = None
    if not exact:
        if type(fact) is not App or len(fact.args) != op.arity:
            return False
        name_check = op.name_check
        code = name_check[0]
        if code == N_IDENT:
            if fact.name is not runtime_name:
                return False
        elif code == N_WRITE:
            regs[name_check[1]] = fact.name
        elif not _struct_match(name_check[1], fact.name, regs, slot_of):
            return False
    fact_args = fact.args
    for mop in op.match_ops:
        code = mop[0]
        if code == 2:  # M_CHECK
            if fact_args[mop[1]] is not regs[mop[2]]:
                return False
        elif code == 1:  # M_WRITE
            regs[mop[2]] = fact_args[mop[1]]
        elif code == 0:  # M_CONST
            if fact_args[mop[1]] is not mop[2]:
                return False
        elif not _struct_match(mop[2], fact_args[mop[1]], regs, slot_of):
            return False
    return True


def _run_register_ops(ops, position, sources, regs, slot_of, rule):
    """Depth-first execution of the register ops from ``position``; yields
    once per complete body solution (the solution *is* the register state)."""
    if position == len(ops):
        yield True
        return
    op = ops[position]
    kind = op.kind
    next_position = position + 1
    if kind == R_FETCH:
        facts, exact, runtime_name = _fetch_candidates(op, sources, regs)
        stats = EXECUTION_STATS.counters()
        stats.fetches += 1
        stats.candidates += len(facts)
        last = next_position == len(ops)
        for fact in facts:
            if not _match_candidate(op, fact, regs, slot_of, exact, runtime_name):
                continue
            if last:
                yield True
            else:
                yield from _run_register_ops(
                    ops, next_position, sources, regs, slot_of, rule
                )
        return
    if kind == R_NEG:
        atom = build_term(op.builder, regs)
        if not atom.is_ground():
            raise GroundingError(
                "negative subgoal %r not ground at evaluation time (rule %r "
                "flounders)" % (atom, rule)
            )
        if not sources.holds(atom):
            yield from _run_register_ops(
                ops, next_position, sources, regs, slot_of, rule
            )
        return
    # R_BUILTIN: numeric fast path, else bridge through a substitution.
    compare = op.compare
    if compare is not None:
        operator, left_code, right_code = compare
        left = regs[left_code] if type(left_code) is int else left_code
        right = regs[right_code] if type(right_code) is int else right_code
        if type(left) is Num and type(right) is Num:
            if operator(left.value, right.value):
                yield from _run_register_ops(
                    ops, next_position, sources, regs, slot_of, rule
                )
            return
    bridge = Substitution._trusted({v: regs[s] for v, s in op.in_pairs})
    for solution in solve_builtin(op.atom, bridge):
        for variable, slot in op.out_pairs:
            regs[slot] = solution[variable]
        yield from _run_register_ops(
            ops, next_position, sources, regs, slot_of, rule
        )


def _run_ops_collect(ops, position, sources, regs, slot_of, rule, sink):
    """Collector twin of :func:`_run_register_ops`: calls ``sink()`` once per
    complete body solution instead of yielding.  Plain function recursion —
    no generator frames — which matters at fixpoint volume (one call chain
    per derived head)."""
    if position == len(ops):
        sink()
        return
    op = ops[position]
    kind = op.kind
    next_position = position + 1
    if kind == R_FETCH:
        facts, exact, runtime_name = _fetch_candidates(op, sources, regs)
        stats = EXECUTION_STATS.counters()
        stats.fetches += 1
        stats.candidates += len(facts)
        last = next_position == len(ops)
        for fact in facts:
            if not _match_candidate(op, fact, regs, slot_of, exact, runtime_name):
                continue
            if last:
                sink()
            else:
                _run_ops_collect(
                    ops, next_position, sources, regs, slot_of, rule, sink
                )
        return
    if kind == R_NEG:
        atom = build_term(op.builder, regs)
        if not atom.is_ground():
            raise GroundingError(
                "negative subgoal %r not ground at evaluation time (rule %r "
                "flounders)" % (atom, rule)
            )
        if not sources.holds(atom):
            _run_ops_collect(
                ops, next_position, sources, regs, slot_of, rule, sink
            )
        return
    compare = op.compare
    if compare is not None:
        operator, left_code, right_code = compare
        left = regs[left_code] if type(left_code) is int else left_code
        right = regs[right_code] if type(right_code) is int else right_code
        if type(left) is Num and type(right) is Num:
            if operator(left.value, right.value):
                _run_ops_collect(
                    ops, next_position, sources, regs, slot_of, rule, sink
                )
            return
    bridge = Substitution._trusted({v: regs[s] for v, s in op.in_pairs})
    for solution in solve_builtin(op.atom, bridge):
        for variable, slot in op.out_pairs:
            regs[slot] = solution[variable]
        _run_ops_collect(ops, next_position, sources, regs, slot_of, rule, sink)


def _prepare_registers(rprog, initial):
    """Allocate the register list and seed it from ``initial`` (a
    :class:`Substitution` or a plain ``{Var: Term}`` dict)."""
    regs = [None] * rprog.nregs
    if initial is not None:
        slot_of = rprog.slot_of
        for variable, value in initial.items():
            slot = slot_of.get(variable)
            if slot is not None:
                regs[slot] = value
    return regs


def _slow_solutions(plan, sources, regs):
    """Body solutions bridged back to substitutions, with deferred builtins
    applied — the path for plans with aggregates or unscheduled builtins."""
    rprog = plan.registers
    bridge = rprog.bridge
    for _ in _run_register_ops(rprog.ops, 0, sources, regs, rprog.slot_of, plan.rule):
        bindings = {}
        for variable, slot in bridge:
            value = regs[slot]
            if value is not None:
                bindings[variable] = value
        currents = [Substitution._trusted(bindings)]
        for literal in plan.deferred_builtins:
            nexts = []
            for candidate in currents:
                nexts.extend(solve_builtin(literal.atom, candidate))
            currents = nexts
            if not currents:
                break
        yield from currents


#: Hard ceiling on the *total* derivations (duplicates included) one
#: fast-path plan run may collect — a memory backstop for duplicate
#: floods.  The semantic cap is ``max_results`` below, which counts
#: *distinct* heads like the callers' ``max_facts`` does.
MAX_PLAN_RESULTS = 8_000_000


def run_plan(plan, sources, initial=None, max_results=None):
    """The ground heads derivable from ``plan`` against ``sources``.

    Returns an iterable (a fully materialized list on the fast path — the
    executor collects heads through plain calls, no generator frames — and
    a lazy generator on the aggregate/deferred-builtin slow path).

    ``initial`` seeds the registers (used by rederivation plans whose head
    was matched against a concrete fact before the body joins run); it may
    be a :class:`Substitution` or a plain ``{Var: Term}`` dict.

    ``max_results`` bounds the number of *distinct* heads one run may
    derive (mirroring the callers' ``max_facts`` fact caps — duplicate
    derivations are legal and preserved, counting maintenance tallies
    them); exceeding it raises :class:`GroundingError`, so runaway
    non-range-restricted rules fail fast inside the collector instead of
    materializing an unbounded result first.  A separate
    :data:`MAX_PLAN_RESULTS` ceiling on total collected derivations bounds
    memory against pure duplicate floods.
    """
    rprog = plan.registers
    if max_results is None:
        max_results = MAX_PLAN_RESULTS
    if rprog.fast:
        regs = _prepare_registers(rprog, initial)
        ops = rprog.ops
        slot_of = rprog.slot_of
        rule = plan.rule
        out = []
        seen = set()
        append = out.append
        head_fast = rprog.head_fast

        def emit(head):
            if head not in seen:
                if len(seen) >= max_results:
                    raise GroundingError(
                        "rule %r produced more than %d distinct heads in one "
                        "pass; the program is probably not range restricted"
                        % (rule, max_results)
                    )
                seen.add(head)
            if len(out) >= MAX_PLAN_RESULTS:
                raise GroundingError(
                    "rule %r produced more than %d derivations in one pass"
                    % (rule, MAX_PLAN_RESULTS)
                )
            append(head)

        if head_fast is not None:
            # Flat head of bound variables: register gather + intern probe.
            head_name, head_slots = head_fast

            def sink():
                emit(intern_app(head_name, tuple(regs[s] for s in head_slots)))
        else:
            head_builder = rprog.head_builder

            def sink():
                head = build_term(head_builder, regs)
                if not head.is_ground():
                    raise GroundingError(
                        "derived head %r is not ground; rule %r is not range "
                        "restricted" % (head, rule)
                    )
                emit(head)
        _run_ops_collect(ops, 0, sources, regs, slot_of, rule, sink)
        return out
    return _run_plan_slow(plan, sources, initial, max_results)


def _run_plan_slow(plan, sources, initial, max_results):
    """Generator tail of :func:`run_plan` for aggregate/deferred plans.

    Lazy (heads stream to the caller), but the same distinct-head cap as
    the fast path applies so runaway rules on this path fail too.
    """
    regs = _prepare_registers(plan.registers, initial)
    seen = set()
    for current in _slow_solutions(plan, sources, regs):
        finals = [current]
        for astep in plan.aggregates:
            extension = sources.aggregate_extension(
                astep.condition_name, astep.condition_arity
            )
            nexts = []
            for candidate in finals:
                nexts.extend(
                    evaluate_aggregate(
                        astep.spec, candidate, extension, group_vars=astep.group_vars
                    )
                )
            finals = nexts
            if not finals:
                break
        for final in finals:
            head = final.apply(plan.rule.head)
            if not head.is_ground():
                raise GroundingError(
                    "derived head %r is not ground; rule %r is not range "
                    "restricted" % (head, plan.rule)
                )
            if head not in seen:
                if len(seen) >= max_results:
                    raise GroundingError(
                        "rule %r produced more than %d distinct heads in one "
                        "pass; the program is probably not range restricted"
                        % (plan.rule, max_results)
                    )
                seen.add(head)
            yield head


def _ops_satisfiable(ops, position, sources, regs, slot_of, rule):
    """Boolean twin of :func:`_run_register_ops`: early-exits on the first
    solution without any generator machinery.  This runs once per
    over-deleted fact during delete-rederive, so constant factors matter."""
    if position == len(ops):
        return True
    op = ops[position]
    kind = op.kind
    next_position = position + 1
    if kind == R_FETCH:
        facts, exact, runtime_name = _fetch_candidates(op, sources, regs)
        stats = EXECUTION_STATS.counters()
        stats.fetches += 1
        stats.candidates += len(facts)
        last = next_position == len(ops)
        for fact in facts:
            if not _match_candidate(op, fact, regs, slot_of, exact, runtime_name):
                continue
            if last:
                return True
            if _ops_satisfiable(ops, next_position, sources, regs, slot_of, rule):
                return True
        return False
    if kind == R_NEG:
        atom = build_term(op.builder, regs)
        if not atom.is_ground():
            raise GroundingError(
                "negative subgoal %r not ground at evaluation time (rule %r "
                "flounders)" % (atom, rule)
            )
        if sources.holds(atom):
            return False
        return _ops_satisfiable(ops, next_position, sources, regs, slot_of, rule)
    compare = op.compare
    if compare is not None:
        operator, left_code, right_code = compare
        left = regs[left_code] if type(left_code) is int else left_code
        right = regs[right_code] if type(right_code) is int else right_code
        if type(left) is Num and type(right) is Num:
            if operator(left.value, right.value):
                return _ops_satisfiable(
                    ops, next_position, sources, regs, slot_of, rule
                )
            return False
    bridge = Substitution._trusted({v: regs[s] for v, s in op.in_pairs})
    for solution in solve_builtin(op.atom, bridge):
        for variable, slot in op.out_pairs:
            regs[slot] = solution[variable]
        if _ops_satisfiable(ops, next_position, sources, regs, slot_of, rule):
            return True
    return False


def plan_satisfiable(plan, sources, initial=None):
    """``True`` when the plan's body (builtins included, aggregates ignored)
    has at least one solution.  Used by delete-rederive maintenance to test
    whether an over-deleted fact has an alternative derivation."""
    rprog = plan.registers
    regs = _prepare_registers(rprog, initial)
    if plan.deferred_builtins:
        for _solution in _slow_solutions(plan, sources, regs):
            return True
        return False
    return _ops_satisfiable(
        rprog.ops, 0, sources, regs, rprog.slot_of, plan.rule
    )


def plan_satisfiable_positional(plan, sources, slots, values):
    """:func:`plan_satisfiable` with the initial binding given positionally:
    ``values[i]`` lands in register ``slots[i]``.  Rederivation calls this
    once per over-deleted fact with the fact's argument tuple — no binding
    dict, no substitution."""
    rprog = plan.registers
    regs = [None] * rprog.nregs
    for slot, value in zip(slots, values):
        regs[slot] = value
    if plan.deferred_builtins:
        for _solution in _slow_solutions(plan, sources, regs):
            return True
        return False
    return _ops_satisfiable(
        rprog.ops, 0, sources, regs, rprog.slot_of, plan.rule
    )


def check_derived_atom(head, store, max_facts, max_term_depth):
    """Enforce the resource caps on a freshly derived atom."""
    if max_term_depth is not None and head.depth() > max_term_depth:
        raise GroundingError(
            "derived atom %r exceeds term depth %d; the program is probably "
            "not strongly range restricted (cf. Example 5.2)" % (head, max_term_depth)
        )
    if len(store) >= max_facts:
        raise GroundingError(
            "semi-naive evaluation exceeded %d facts; the program is "
            "probably not range restricted" % max_facts
        )


class StratumPlan(NamedTuple):
    """The compiled evaluation plans of one stratum."""

    #: The stratum's rules (in program order).
    rules: Tuple
    #: rule -> same-stratum body indicators (``None``: definite fallback).
    recursive: Dict
    #: ``(rule, plan)`` pairs for the initial (non-delta) pass.
    base_plans: Tuple
    #: ``(rule, site, plan)`` delta variants, one per recursive body site.
    variant_plans: Tuple
    #: Indicators of the stratum's head predicates, or ``None`` when some
    #: head predicate name is non-ground (the definite higher-order case).
    head_indicators: Optional[FrozenSet]
    #: Indicators read by bodies/aggregates, or ``None`` when unknowable.
    reads: Optional[FrozenSet]
    has_negation: bool
    has_aggregates: bool
    #: Whether some rule reads a same-stratum predicate.
    is_recursive: bool

    def pin_roots(self):
        """Term roots the stratum's compiled plans retain, for intern
        generation pin sets (:func:`repro.hilog.terms.collect_generation`).
        The base and delta variants compile from the stratum's own rules
        (the reordered bodies reuse the same atom objects), so the rules'
        roots cover every register-program constant."""
        for rule in self.rules:
            yield from rule.pin_roots()


def compile_stratum(rules, recursive):
    """Compile one stratum's rules into a :class:`StratumPlan`.

    ``recursive`` is the per-rule same-stratum indicator map produced by
    :func:`stratify_program` (``{rule: None}`` entries for the definite
    fallback).  Raises :class:`SeminaiveUnsupported` when a rule body cannot
    be ordered into a safe join plan.
    """
    try:
        base_plans = tuple((rule, compile_rule(rule)) for rule in rules)
        variant_plans = []
        for rule in rules:
            for site in _delta_sites(rule, recursive[rule]):
                variant_plans.append((rule, site, compile_rule(rule, delta_index=site)))
    except PlanError as error:
        raise SeminaiveUnsupported(str(error))

    head_indicators = set()
    reads = set()
    for rule in rules:
        head = _literal_indicator(rule.head)
        if head is None:
            head_indicators = None
        elif head_indicators is not None:
            head_indicators.add(head)
        for literal in rule.body:
            if literal.is_builtin():
                continue
            indicator = _literal_indicator(literal.atom)
            if indicator is None:
                reads = None
            elif reads is not None:
                reads.add(indicator)
        for spec in rule.aggregates:
            indicator = _literal_indicator(spec.condition)
            if indicator is None:
                reads = None
            elif reads is not None:
                reads.add(indicator)

    return StratumPlan(
        rules=tuple(rules),
        recursive=dict(recursive),
        base_plans=base_plans,
        variant_plans=tuple(variant_plans),
        head_indicators=frozenset(head_indicators) if head_indicators is not None else None,
        reads=frozenset(reads) if reads is not None else None,
        has_negation=any(rule.negative_literals() for rule in rules),
        has_aggregates=any(rule.aggregates for rule in rules),
        is_recursive=bool(variant_plans),
    )


def evaluate_stratum(stratum, store, max_facts=1000000, max_term_depth=None,
                     seed_delta=None, negation_store=None):
    """Run the semi-naive fixpoint of one stratum against ``store``.

    Without ``seed_delta`` this is the full evaluation: one base pass over
    every rule, then delta iterations until quiescence.  With ``seed_delta``
    — an iterable of facts the caller just added to the store, read at the
    stratum's delta sites (its own recursive predicates) — the base pass is
    skipped and the fixpoint resumes from the injected delta; this is the
    re-evaluation primitive incremental insertion maintenance is built on.
    Facts of *lower*-stratum predicates do not propagate through this
    entry point: anchor them with per-site update variants first (as
    :func:`repro.db.maintenance.dred_update` does) and inject the heads.

    ``negation_store`` redirects negative subgoals to a different store
    (see :class:`PlanSources`): the alternating-fixpoint well-founded
    evaluator runs each phase's fixpoint through this entry point with the
    opposite phase's store as the negation context.

    Returns ``(iterations, added)`` where ``added`` lists the facts newly
    added to the store (excluding the seeds themselves).
    """
    tracer = current_tracer()
    if tracer is not None:
        started = _perf_counter()
        stats_before = EXECUTION_STATS.snapshot()
    added = []
    check_depth = max_term_depth is not None
    if seed_delta is None:
        iterations = 1
        sources = PlanSources(store, negation=negation_store)
        for _rule, plan in stratum.base_plans:
            for head in run_plan(plan, sources, max_results=max_facts):
                if check_depth:
                    check_derived_atom(head, store, max_facts, max_term_depth)
                elif len(store) >= max_facts:
                    check_derived_atom(head, store, max_facts, max_term_depth)
                if store.add(head):
                    added.append(head)
        delta = list(added)
    else:
        iterations = 0
        delta = list(seed_delta)

    while delta:
        iterations += 1
        if tracer is not None:
            tracer.emit("iteration", iteration=iterations, delta=len(delta))
        delta_store = DeltaStore(delta)
        delta = []
        sources = PlanSources(store, delta_store, negation=negation_store)
        for _rule, _site, plan in stratum.variant_plans:
            for head in run_plan(plan, sources, max_results=max_facts):
                if check_depth:
                    check_derived_atom(head, store, max_facts, max_term_depth)
                elif len(store) >= max_facts:
                    check_derived_atom(head, store, max_facts, max_term_depth)
                if store.add(head):
                    delta.append(head)
                    added.append(head)
    if tracer is not None:
        stats = EXECUTION_STATS.diff(stats_before)
        tracer.emit(
            "stratum", seeded=seed_delta is not None, iterations=iterations,
            added=len(added), duration_s=_perf_counter() - started,
            fetches=stats["fetches"], candidates=stats["candidates"],
        )
    return iterations, added


def seminaive_evaluate(program, extra_facts=(), max_facts=1000000, max_term_depth=None):
    """Evaluate ``program`` bottom-up with semi-naive iteration.

    ``extra_facts`` seeds the store with additional ground atoms assumed
    true (used by the modular evaluator to pass settled lower components
    in).  Returns a :class:`SeminaiveResult`; the computed ``true`` set is
    the perfect model of the (stratified) program — everything outside it is
    false under the closed-world reading the paper's unfoundedness arguments
    justify for range-restricted programs.

    Raises :class:`SeminaiveUnsupported` for programs outside the supported
    class and :class:`GroundingError` for unsafe (non-range-restricted)
    rules, mirroring the grounding path's behaviour.
    """
    stratification = stratify_program(program)
    tracer = current_tracer()
    if tracer is not None:
        started = _perf_counter()

    store = RelationStore()
    seeds = set()
    for atom in extra_facts:
        if not atom.is_ground():
            raise GroundingError("extra fact %r is not ground" % (atom,))
        store.add(atom)
        seeds.add(atom)
    for rule in program.rules:
        if rule.is_fact():
            if not rule.head.is_ground():
                raise GroundingError("fact %r is not ground" % (rule.head,))
            if store.add(rule.head):
                seeds.add(rule.head)

    iterations = 0
    strata_names = []
    for rules in stratification.strata:
        stratum = compile_stratum(rules, stratification.recursive)
        stratum_iterations, _added = evaluate_stratum(
            stratum, store, max_facts=max_facts, max_term_depth=max_term_depth
        )
        iterations += stratum_iterations
        strata_names.append(frozenset(predicate_name(rule.head) for rule in rules))

    true = frozenset(store)
    if tracer is not None:
        tracer.emit(
            "evaluate", strata=len(strata_names), iterations=iterations,
            facts=len(true), duration_s=_perf_counter() - started,
        )
    return SeminaiveResult(
        true=true,
        derived=true - seeds,
        strata=tuple(strata_names),
        iterations=iterations,
        store=store,
    )


def seminaive_perfect_model(program, **kwargs):
    """The perfect model of a stratified program as a (total)
    :class:`Interpretation`: the derived atoms are true, everything else is
    false by closed world."""
    result = seminaive_evaluate(program, **kwargs)
    return Interpretation(true=result.true, base=result.true)
