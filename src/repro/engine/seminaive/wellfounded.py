"""Semi-naive well-founded evaluation: the alternating fixpoint on the
register machine.

The paper's central examples — win/move games over arbitrary graphs,
Example 6.3's parameterized games — live *between* the stratified programs
(:func:`repro.engine.seminaive.engine.seminaive_evaluate`) and arbitrary
normal programs: their predicate dependency graph has a cycle through
negation, so no stratum order makes every negative subgoal read a settled
stratum.  Their well-founded model is still computable bottom-up by Van
Gelder's **alternating fixpoint**: iterate the Gelfond–Lifschitz operator
``Γ`` from below and above at once — the least fixpoint of ``Γ²`` is the
set of certainly-true atoms, its greatest fixpoint the set of
possibly-true (true-or-undefined) atoms, and the gap between them is
exactly the undefined part of the well-founded model (Definitions 3.3–3.5
via the Γ characterization).

This module runs *both* phases of that construction as semi-naive
fixpoints over the existing :class:`~repro.engine.seminaive.plan.JoinPlan`
/ register-machine execution, instead of materializing a ground program
and iterating over its rules:

* the program is stratified with
  :func:`~repro.engine.seminaive.engine.stratify_program`
  (``allow_unstratified=True``), so only the negation-SCC strata alternate
  — genuinely stratified strata still evaluate **once** through the
  ordinary least fixpoint, and stratified strata that merely *read*
  possibly-undefined lower atoms evaluate exactly twice (one overestimate
  pass, one underestimate pass; with negation confined to settled strata
  the two phases cannot feed back into each other);
* each phase resolves its negative subgoals against the **opposite**
  phase's store through the
  :class:`~repro.engine.seminaive.engine.PlanSources` negation hook:
  ``not a`` holds while overestimating iff ``a`` is not proven true, and
  while underestimating iff ``a`` is not even possibly true;
* the *underestimate* is monotone across alternations, so it lives in one
  :class:`~repro.engine.seminaive.relation.RelationStore` forever and each
  outer alternation resumes it semi-naively: the atoms that just fell out
  of the overestimate anchor flipped-negation delta variants (the
  ``compile_rule(flipped, delta_index=site)`` idiom of
  :mod:`repro.db.plans`), and the heads they produce are injected through
  ``evaluate_stratum(seed_delta=...)`` — no from-scratch recomputation of
  the true atoms, work per alternation proportional to what changed;
* the *overestimate* shrinks across alternations, so each alternation
  builds it into a fresh :class:`~repro.engine.seminaive.relation.LayeredStore`
  layer stacked on the settled stores — discarding the previous
  overestimate is dropping a layer, never a per-fact deletion.

The result partitions the derivable atoms into true and undefined;
everything else is false under the closed-world reading the paper's
unfoundedness arguments justify for range-restricted programs
(Observation 5.1) — the same soundness assumption the relevance grounder
makes.  The ground construction in :mod:`repro.engine.wellfounded` stays
the verification oracle; the differential harness in
``tests/engine/test_wellfounded_agreement.py`` checks the two engines (and
the paper-faithful ``W_P`` iteration) atom-for-atom on random
non-stratified programs.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import FrozenSet, NamedTuple, Tuple

from repro.engine.interpretation import Interpretation
from repro.engine.seminaive.engine import (
    EXECUTION_STATS,
    PlanSources,
    SeminaiveUnsupported,
    _literal_indicator,
    check_derived_atom,
    compile_stratum,
    evaluate_stratum,
    run_plan,
    stratify_program,
)
from repro.engine.seminaive.plan import PlanError, compile_rule
from repro.engine.seminaive.relation import (
    DeltaStore,
    LayeredStore,
    RelationStore,
    predicate_indicator,
)
from repro.engine.wellfounded import WellFoundedResult
from repro.hilog.errors import GroundingError
from repro.obs.trace import current_tracer
from repro.hilog.program import Literal, Rule
from repro.hilog.terms import Term, predicate_name


class SeminaiveWellFoundedResult(NamedTuple):
    """The well-founded model computed by the alternating semi-naive
    evaluation, as a true/undefined partition of the derivable atoms."""

    #: Atoms true in the well-founded model (seeds included).
    true: FrozenSet[Term]
    #: Atoms left undefined (in the overestimate but never proven).
    undefined: FrozenSet[Term]
    #: Predicate-name terms settled per stratum, lowest first.
    strata: Tuple[FrozenSet[Term], ...]
    #: Total inner delta iterations across all strata and phases.
    iterations: int
    #: Total outer over/under alternations (0 for stratified programs).
    alternations: int
    #: The underestimate store — the true atoms, indexed.
    store: RelationStore

    def is_total(self):
        """True when the model leaves nothing undefined."""
        return not self.undefined

    def interpretation(self):
        """The model as an :class:`~repro.engine.interpretation.Interpretation`
        over the derivable atoms: ``true`` is explicit, ``undefined`` is the
        rest of the base, and everything outside the base is false by
        closed world (the same convention the seminaive perfect model
        uses)."""
        return Interpretation(true=self.true, false=(), base=self.true | self.undefined)


def _negation_variants(stratum):
    """Flipped-negation delta variants of a negation-SCC stratum.

    For every body literal ``not a`` whose indicator is defined *in* the
    stratum, compile the rule with that literal flipped positive and
    anchored on the delta — the plan that finds every rule instance newly
    enabled because ``a`` just fell out of the overestimate.  Negations on
    settled lower strata are skipped: their context never changes between
    alternations.
    """
    variants = []
    heads = stratum.head_indicators
    try:
        for rule in stratum.rules:
            for site, literal in enumerate(rule.body):
                if literal.positive or literal.is_builtin():
                    continue
                indicator = _literal_indicator(literal.atom)
                if heads is not None and indicator is not None \
                        and indicator not in heads:
                    continue
                flipped = Rule(
                    rule.head,
                    rule.body[:site] + (Literal(literal.atom, True),)
                    + rule.body[site + 1:],
                    rule.aggregates,
                )
                variants.append((rule, site, compile_rule(flipped, delta_index=site)))
    except PlanError as error:
        raise SeminaiveUnsupported(str(error))
    return tuple(variants)


def _alternate_stratum(stratum, under, over_extra, max_facts, max_term_depth):
    """The alternating fixpoint of one negation-SCC stratum.

    ``under`` (the global underestimate) and ``over_extra`` (settled
    lower-strata undefined atoms) are read in place; the stratum's final
    overestimate is returned as a fresh layer disjoint from ``under``.
    Each round computes ``O_k = Γ(U_{k-1})`` into a fresh layer and then
    resumes ``U_k = Γ(O_k)`` semi-naively from the atoms that left the
    overestimate; ``U`` grows and ``O`` shrinks monotonically, so the loop
    stops the first time the underestimate stands still.

    Returns ``(iterations, alternations, final_layer)``.
    """
    variants = _negation_variants(stratum)
    tracer = current_tracer()
    iterations = 0
    alternations = 0
    previous_layer = None
    check_caps = max_term_depth is not None
    while True:
        alternations += 1
        EXECUTION_STATS.alternations += 1
        iterations_before = iterations

        # Overestimate phase: least fixpoint with ``not a`` ⇔ a ∉ under.
        layer = RelationStore()
        over_view = LayeredStore(under, over_extra, layer)
        its, _over_added = evaluate_stratum(
            stratum, over_view, negation_store=under,
            max_facts=max_facts, max_term_depth=max_term_depth,
        )
        iterations += its

        # Underestimate phase: least fixpoint with ``not a`` ⇔ a ∉ over.
        if previous_layer is None:
            # First alternation: full base pass + delta iterations.
            its, under_added = evaluate_stratum(
                stratum, under, negation_store=over_view,
                max_facts=max_facts, max_term_depth=max_term_depth,
            )
            iterations += its
            grew = bool(under_added)
        else:
            # Later alternations: only a shrunken overestimate can enable
            # new true derivations.  Anchor the flipped-negation variants
            # on the atoms that left the overestimate, then propagate the
            # seeds through the ordinary semi-naive delta loop.
            removed = [
                atom for atom in previous_layer
                if atom not in layer and atom not in under
            ]
            seeds = []
            if removed:
                sources = PlanSources(
                    under, DeltaStore(removed), negation=over_view
                )
                for _rule, _site, plan in variants:
                    for head in run_plan(plan, sources, max_results=max_facts):
                        if check_caps or len(under) >= max_facts:
                            check_derived_atom(head, under, max_facts, max_term_depth)
                        if under.add(head):
                            seeds.append(head)
            grew = bool(seeds)
            if seeds:
                its, _more = evaluate_stratum(
                    stratum, under, seed_delta=seeds, negation_store=over_view,
                    max_facts=max_facts, max_term_depth=max_term_depth,
                )
                iterations += its
        if tracer is not None:
            tracer.emit(
                "alternation", alternation=alternations,
                over=len(layer), under=len(under),
                iterations=iterations - iterations_before, grew=grew,
            )
        if not grew:
            # U_k == U_{k-1}, hence O_{k+1} would equal O_k: converged.
            # ``layer`` was computed against the final underestimate, so it
            # holds exactly this stratum's undefined atoms.
            return iterations, alternations, layer
        previous_layer = layer


def seminaive_well_founded(program, extra_facts=(), max_facts=1000000,
                           max_term_depth=None):
    """Compute the well-founded model of ``program`` semi-naively.

    Handles every ground-predicate-indicator program without aggregation
    through negation cycles — in particular the non-stratified class the
    stratified engine (:func:`~repro.engine.seminaive.engine.seminaive_evaluate`)
    refuses.  ``extra_facts`` seeds additional atoms assumed true.  Returns
    a :class:`SeminaiveWellFoundedResult`; raises
    :class:`~repro.engine.seminaive.engine.SeminaiveUnsupported` for
    programs outside the class (non-ground predicate names with negation,
    recursion through aggregation, aggregation over possibly-undefined
    atoms) and :class:`~repro.hilog.errors.GroundingError` when a resource
    cap trips, mirroring the stratified engine's contract.
    """
    stratification = stratify_program(program, allow_unstratified=True)
    tracer = current_tracer()
    if tracer is not None:
        started = _perf_counter()

    under = RelationStore()
    for atom in extra_facts:
        if not atom.is_ground():
            raise GroundingError("extra fact %r is not ground" % (atom,))
        under.add(atom)
    for rule in program.rules:
        if rule.is_fact():
            if not rule.head.is_ground():
                raise GroundingError("fact %r is not ground" % (rule.head,))
            under.add(rule.head)

    over_extra = RelationStore()
    uncertain = set()
    iterations = 0
    alternations = 0
    strata_names = []

    for index, rules in enumerate(stratification.strata):
        stratum = compile_stratum(rules, stratification.recursive)
        strata_names.append(frozenset(predicate_name(rule.head) for rule in rules))
        alternating = index in stratification.unstratified
        if uncertain:
            reads = stratum.reads
            reads_uncertain = reads is None or bool(reads & uncertain)
        else:
            reads_uncertain = False
        if stratum.has_aggregates and (alternating or reads_uncertain):
            raise SeminaiveUnsupported(
                "a stratum aggregates inside a negation cycle or over "
                "possibly-undefined atoms; three-valued aggregation is "
                "outside the supported class"
            )

        if not alternating and not reads_uncertain:
            # Certain stratum: the classic single least fixpoint — its
            # atoms are both proven and possibly true, no second store.
            its, _added = evaluate_stratum(
                stratum, under, max_facts=max_facts, max_term_depth=max_term_depth,
            )
            iterations += its
            continue

        if not alternating:
            # Stratified stratum over three-valued input: negation reads
            # settled strata only, so the two phases cannot feed back —
            # one overestimate pass, one underestimate pass.
            over_view = LayeredStore(under, over_extra)
            its, over_added = evaluate_stratum(
                stratum, over_view, negation_store=under,
                max_facts=max_facts, max_term_depth=max_term_depth,
            )
            iterations += its
            its, _added = evaluate_stratum(
                stratum, under, negation_store=over_view,
                max_facts=max_facts, max_term_depth=max_term_depth,
            )
            iterations += its
            alternations += 1
            EXECUTION_STATS.alternations += 1
            for atom in over_added:
                if atom in under:
                    over_extra.remove(atom)
                else:
                    uncertain.add(predicate_indicator(atom))
            continue

        # Negation-SCC stratum: the full alternating fixpoint.
        its, alts, layer = _alternate_stratum(
            stratum, under, over_extra, max_facts, max_term_depth
        )
        iterations += its
        alternations += alts
        for atom in layer:
            over_extra.add(atom)
            uncertain.add(predicate_indicator(atom))

    if tracer is not None:
        tracer.emit(
            "wellfounded", strata=len(strata_names), iterations=iterations,
            alternations=alternations, true=len(under),
            undefined=len(over_extra), duration_s=_perf_counter() - started,
        )
    return SeminaiveWellFoundedResult(
        true=frozenset(under),
        undefined=frozenset(over_extra),
        strata=tuple(strata_names),
        iterations=iterations,
        alternations=alternations,
        store=under,
    )


def seminaive_well_founded_model(program, **kwargs):
    """The well-founded model as an
    :class:`~repro.engine.interpretation.Interpretation` (see
    :meth:`SeminaiveWellFoundedResult.interpretation`)."""
    return seminaive_well_founded(program, **kwargs).interpretation()


def seminaive_well_founded_detailed(program, **kwargs):
    """Like :func:`seminaive_well_founded_model` but returning the shared
    :class:`~repro.engine.wellfounded.WellFoundedResult`, so callers can
    treat the three well-founded engines (``wp``, ``alternating``,
    ``seminaive``) uniformly."""
    result = seminaive_well_founded(program, **kwargs)
    return WellFoundedResult(
        interpretation=result.interpretation(),
        iterations=result.iterations,
        engine="seminaive",
        alternations=result.alternations,
    )
