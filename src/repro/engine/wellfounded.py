"""The well-founded semantics for ground programs.

Two interchangeable engines are provided:

* ``engine="wp"`` — the paper-faithful construction (Definitions 3.3–3.5):
  iterate ``W_P(I) = T_P(I) ∪ ¬·U_P(I)`` from the empty partial
  interpretation until the least fixpoint is reached, where ``U_P(I)`` is the
  greatest unfounded set with respect to ``I``.

* ``engine="alternating"`` — the alternating fixpoint of the
  Gelfond–Lifschitz operator Γ (Van Gelder): the least fixpoint of Γ² is the
  set of well-founded true atoms and its greatest fixpoint is the set of
  true-or-undefined atoms.  This is asymptotically faster and is the default
  for benchmarks.

Both engines produce the same :class:`repro.engine.interpretation.Interpretation`
(the test suite cross-checks them on every program it touches).

A third, non-ground engine lives in :mod:`repro.engine.seminaive.wellfounded`:
the alternating fixpoint run semi-naively over indexed relations, without
materializing a ground program.  It reports its results through the same
:class:`WellFoundedResult` (``engine="seminaive"``, with the outer
``alternations`` count populated); the two ground engines here remain the
verification oracles for it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, NamedTuple, Optional, Set, Tuple

from repro.engine.fixpoint import gelfond_lifschitz, least_model_with_blocked
from repro.engine.grounding import GroundProgram, GroundRule
from repro.engine.interpretation import Interpretation


class WellFoundedResult(NamedTuple):
    """The well-founded model plus diagnostics about its computation.

    Shared by all three engines: the ground ``wp``/``alternating``
    constructions here, and the semi-naive alternating fixpoint of
    :mod:`repro.engine.seminaive.wellfounded`.  ``iterations`` counts the
    engine's inner fixpoint steps; ``alternations`` the outer over/under
    rounds (only the semi-naive engine distinguishes the two — the ground
    engines leave it 0).
    """

    interpretation: Interpretation
    iterations: int
    engine: str
    alternations: int = 0


def tp_operator(ground_program, interpretation):
    """``T_P(I)``: heads of rules whose body literals are all in ``I``.

    Membership is literal membership (Definition 3.5), not closed-world
    falsity: a positive body atom must be in ``I.true`` and a negative body
    atom's complement must be in ``I.false``.
    """
    derived = set()
    true = interpretation.true
    false = interpretation.false
    for rule in ground_program.rules:
        if all(atom in true for atom in rule.positive) and all(
            atom in false for atom in rule.negative
        ):
            derived.add(rule.head)
    return derived


def greatest_unfounded_set(ground_program, interpretation):
    """``U_P(I)``: the greatest unfounded set with respect to ``I``
    (Definitions 3.3/3.4).

    Computed as the complement of the least set of "founded" atoms: an atom
    is founded when it has a rule that is not refuted by ``I`` (no body
    literal's complement is in ``I``) and whose positive body atoms are all
    founded.
    """
    true = interpretation.true
    false = interpretation.false

    def refuted(rule):
        if any(atom in false for atom in rule.positive):
            return True
        return any(atom in true for atom in rule.negative)

    founded = least_model_with_blocked(ground_program.rules, blocked=refuted)
    return set(ground_program.base) - founded


def wp_operator(ground_program, interpretation):
    """``W_P(I) = T_P(I) ∪ ¬·U_P(I)`` as a new interpretation over the base."""
    true = tp_operator(ground_program, interpretation)
    false = greatest_unfounded_set(ground_program, interpretation)
    return Interpretation(true, false, base=ground_program.base)


def _well_founded_wp(ground_program):
    """Least fixpoint of ``W_P`` by direct iteration from the empty interpretation."""
    current = Interpretation((), (), base=ground_program.base)
    iterations = 0
    while True:
        iterations += 1
        next_interpretation = wp_operator(ground_program, current)
        if next_interpretation.true == current.true and next_interpretation.false == current.false:
            return WellFoundedResult(next_interpretation, iterations, "wp")
        current = next_interpretation


def _well_founded_alternating(ground_program):
    """Alternating fixpoint of the Gelfond–Lifschitz operator."""
    rules = ground_program.rules
    true = set()
    iterations = 0
    while True:
        iterations += 1
        not_false = gelfond_lifschitz(rules, true)
        new_true = gelfond_lifschitz(rules, not_false)
        if new_true == true:
            interpretation = Interpretation(
                true, set(ground_program.base) - not_false, base=ground_program.base
            )
            return WellFoundedResult(interpretation, iterations, "alternating")
        true = new_true


_ENGINES = {
    "wp": _well_founded_wp,
    "alternating": _well_founded_alternating,
}


def well_founded_model(ground_program, engine="alternating"):
    """The well-founded (partial) model of a ground program as an
    :class:`Interpretation` over the program's atom base."""
    return well_founded_model_detailed(ground_program, engine=engine).interpretation


def well_founded_model_detailed(ground_program, engine="alternating"):
    """Like :func:`well_founded_model` but also reporting iteration counts."""
    if engine not in _ENGINES:
        raise ValueError("unknown well-founded engine %r (use 'wp' or 'alternating')" % (engine,))
    return _ENGINES[engine](ground_program)


def is_total(interpretation):
    """True when the interpretation leaves nothing undefined."""
    return interpretation.is_total()
