"""Stable models of ground programs.

The paper takes the characterization of Van Gelder/Ross/Schlipf as its
definition: a stable model is a *two-valued* fixpoint of ``W_P``
(Definition 3.6).  This is equivalent to the original Gelfond–Lifschitz
definition (``M`` is stable iff ``M`` equals the least model of the reduct
``P^M``), which is the check implemented here because it is cheap.

Stable-model enumeration proceeds from the well-founded model: every stable
model contains all well-founded-true atoms and no well-founded-false atom,
so the search only branches on the undefined atoms.  A simple
branch-and-propagate search keeps the enumeration practical for the program
sizes used in the paper's examples and in the benchmarks.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.fixpoint import gelfond_lifschitz
from repro.engine.grounding import GroundProgram
from repro.engine.interpretation import Interpretation
from repro.engine.wellfounded import well_founded_model, wp_operator
from repro.hilog.errors import EvaluationError


def is_stable_model(ground_program, true_atoms):
    """Gelfond–Lifschitz check: ``M`` is stable iff ``M = lfp(P^M)``."""
    candidate = set(true_atoms)
    return gelfond_lifschitz(ground_program.rules, candidate) == candidate


def is_two_valued_wp_fixpoint(ground_program, interpretation):
    """The paper's Definition 3.6 check, used to cross-validate
    :func:`is_stable_model` in the tests: a total interpretation that is a
    fixpoint of ``W_P``."""
    if not interpretation.is_total():
        return False
    image = wp_operator(ground_program, interpretation)
    return image.true == interpretation.true and image.false == interpretation.false


def stable_models(ground_program, max_branch_atoms=26, limit=None):
    """Enumerate the stable models of a ground program.

    Returns a list of total :class:`Interpretation` objects over the
    program's base.  The search space is the set of atoms left undefined by
    the well-founded model; ``max_branch_atoms`` guards against accidentally
    exponential enumerations (raise it explicitly for stress tests).
    """
    wfs = well_founded_model(ground_program)
    base = set(ground_program.base)
    undefined = sorted(wfs.undefined, key=repr)
    if len(undefined) > max_branch_atoms:
        raise EvaluationError(
            "stable-model search would branch on %d undefined atoms "
            "(limit %d); raise max_branch_atoms to force it"
            % (len(undefined), max_branch_atoms)
        )

    models = []
    seen = set()

    def record(candidate):
        frozen = frozenset(candidate)
        if frozen in seen:
            return
        if is_stable_model(ground_program, frozen):
            seen.add(frozen)
            models.append(Interpretation(frozen, base - frozen, base=base))

    def search(index, chosen):
        if limit is not None and len(models) >= limit:
            return
        if index == len(undefined):
            record(set(wfs.true) | chosen)
            return
        atom = undefined[index]
        # Branch: atom false first (tends to find minimal models earlier),
        # then atom true.
        search(index + 1, chosen)
        search(index + 1, chosen | {atom})

    search(0, set())
    models.sort(key=lambda m: (len(m.true), sorted(map(repr, m.true))))
    if limit is not None:
        return models[:limit]
    return models


def has_stable_model(ground_program, max_branch_atoms=26):
    """True when the program has at least one stable model."""
    return bool(stable_models(ground_program, max_branch_atoms=max_branch_atoms, limit=1))


def true_in_all_stable_models(ground_program, atom, max_branch_atoms=26):
    """Skeptical stable-model entailment of a single ground atom
    (Definition 3.7: a sentence is true when it is true in all stable models)."""
    models = stable_models(ground_program, max_branch_atoms=max_branch_atoms)
    if not models:
        return False
    return all(model.is_true(atom) for model in models)


def false_in_all_stable_models(ground_program, atom, max_branch_atoms=26):
    """Skeptical falsity of a single ground atom (Definition 3.7)."""
    models = stable_models(ground_program, max_branch_atoms=max_branch_atoms)
    if not models:
        return False
    return all(model.is_false(atom) for model in models)
