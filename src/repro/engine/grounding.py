"""Grounders: from HiLog programs with variables to ground programs.

The paper defines the semantics of a HiLog program by instantiating its
rules over the HiLog Herbrand universe (Section 4).  That universe is
infinite, so this module provides two practical grounders:

* :func:`ground_over_universe` — exhaustive instantiation over an explicitly
  given finite universe fragment (typically a depth-bounded
  :class:`repro.hilog.herbrand.HerbrandUniverse`).  Faithful to the paper's
  construction restricted to the fragment; used by the semantics experiments
  on small vocabularies.

* :func:`relevant_ground_program` — relevance-driven instantiation: only
  rule instances whose positive body atoms are derivable (ignoring negation)
  are produced.  For the program classes the paper's algorithms target
  (strongly range-restricted programs, Datahilog programs) every atom not
  produced this way is unfounded and hence false in the well-founded model
  (Observation 5.1, Lemma 6.3), so evaluating over the relevant fragment is
  sound and complete.

Ground rules carry only atoms: builtins are evaluated away during grounding
and aggregate rules are rejected here (they are handled by the modular
evaluator in :mod:`repro.core.modular`).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.hilog.errors import EvaluationError, GroundingError
from repro.hilog.program import Literal, Program, Rule
from repro.hilog.subst import Substitution
from repro.hilog.terms import App, Term, Var, predicate_name
from repro.hilog.unify import match
from repro.engine.builtins import evaluate_ground_builtin, solve_builtin


class GroundRule(NamedTuple):
    """A fully instantiated rule: head atom, positive body atoms, negative body atoms."""

    head: Term
    positive: Tuple[Term, ...]
    negative: Tuple[Term, ...]

    def __repr__(self):
        from repro.hilog.pretty import format_term

        parts = [format_term(a) for a in self.positive]
        parts += ["not %s" % format_term(a) for a in self.negative]
        if not parts:
            return "%s." % format_term(self.head)
        return "%s :- %s." % (format_term(self.head), ", ".join(parts))


class GroundProgram:
    """A finite set of ground rules together with the atom base they range over."""

    __slots__ = ("rules", "base")

    def __init__(self, rules, base=None):
        rules = tuple(rules)
        atoms = set()
        for rule in rules:
            atoms.add(rule.head)
            atoms.update(rule.positive)
            atoms.update(rule.negative)
        if base is not None:
            atoms |= set(base)
        object.__setattr__(self, "rules", rules)
        object.__setattr__(self, "base", frozenset(atoms))

    def __setattr__(self, key, value):
        raise AttributeError("GroundProgram is immutable")

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def __repr__(self):
        return "GroundProgram(rules=%d, base=%d)" % (len(self.rules), len(self.base))

    def rules_for(self, atom):
        """All ground rules whose head is ``atom``."""
        return tuple(rule for rule in self.rules if rule.head == atom)

    def atoms_by_head(self):
        """Mapping from head atom to the list of its rules."""
        index = {}
        for rule in self.rules:
            index.setdefault(rule.head, []).append(rule)
        return index

    def union(self, other):
        """Union of two ground programs (rule sets and bases)."""
        return GroundProgram(tuple(self.rules) + tuple(other.rules), self.base | other.base)


# ---------------------------------------------------------------------------
# Exhaustive grounding over a finite universe fragment
# ---------------------------------------------------------------------------

def ground_over_universe(program, universe, base_from_universe=False, arities=None):
    """Instantiate every rule of ``program`` over ``universe`` exhaustively.

    ``universe`` is any iterable of ground terms (for example a
    :class:`repro.hilog.herbrand.HerbrandUniverse`).  Builtin body literals
    are evaluated and removed; instances whose builtins fail are dropped.

    When ``base_from_universe`` is true the returned program's atom base also
    contains, for every arity in ``arities`` (default: the arities used in
    the program), every atom ``name(args...)`` with name and arguments drawn
    from the universe — this materializes a larger slice of the HiLog
    Herbrand base and is used by the experiments that need "new" atoms to be
    explicitly present (domain independence, conservative extensions).
    """
    if program.has_aggregates():
        raise GroundingError("exhaustive grounding does not support aggregate rules")
    universe_terms = list(universe)
    if not universe_terms:
        raise GroundingError("cannot ground over an empty universe")

    ground_rules = []
    for rule in program.rules:
        variables = sorted(rule.variables(), key=lambda v: v.name)
        if not variables:
            instance = _finish_instance(rule, Substitution())
            if instance is not None:
                ground_rules.append(instance)
            continue
        for combination in product(universe_terms, repeat=len(variables)):
            subst = Substitution(dict(zip(variables, combination)))
            instance = _finish_instance(rule, subst)
            if instance is not None:
                ground_rules.append(instance)

    extra_base = set()
    if base_from_universe:
        if arities is None:
            arities = _program_arities(program)
        for arity in sorted(arities):
            for name in universe_terms:
                for args in product(universe_terms, repeat=arity):
                    extra_base.add(App(name, args) if arity else App(name, ()))
        extra_base.update(universe_terms)
    return GroundProgram(ground_rules, base=extra_base)


def _program_arities(program):
    arities = set()
    for rule in program.rules:
        atoms = [rule.head] + [lit.atom for lit in rule.body if not lit.is_builtin()]
        for atom in atoms:
            if isinstance(atom, App):
                arities.add(len(atom.args))
            else:
                arities.add(0)
    # Arity 0 here means "bare symbol", which is already in the universe.
    return {a for a in arities if a > 0}


def _finish_instance(rule, subst):
    """Apply ``subst`` to ``rule``, evaluate its builtins, and return a
    :class:`GroundRule` (or ``None`` when a builtin fails).

    Raises :class:`GroundingError` when the substituted rule is not ground.
    """
    head = subst.apply(rule.head)
    if not head.is_ground():
        raise GroundingError("rule head %r is not ground after substitution" % (head,))
    positive = []
    negative = []
    for literal in rule.body:
        atom = subst.apply(literal.atom)
        if literal.is_builtin():
            if not atom.is_ground():
                raise GroundingError("builtin %r not ground after substitution" % (atom,))
            if not evaluate_ground_builtin(atom):
                return None
            continue
        if not atom.is_ground():
            raise GroundingError("body atom %r is not ground after substitution" % (atom,))
        if literal.positive:
            positive.append(atom)
        else:
            negative.append(atom)
    return GroundRule(head, tuple(positive), tuple(negative))


# ---------------------------------------------------------------------------
# Relevance-driven grounding
# ---------------------------------------------------------------------------

class _AtomIndex:
    """Index ground atoms by their (ground) predicate-name term for matching."""

    def __init__(self):
        self._by_name = {}
        self._all = []
        self._members = set()

    def __contains__(self, atom):
        return atom in self._members

    def __len__(self):
        return len(self._all)

    def add(self, atom):
        if atom in self._members:
            return False
        self._members.add(atom)
        self._all.append(atom)
        name = predicate_name(atom)
        self._by_name.setdefault(name, []).append(atom)
        return True

    def candidates(self, pattern, subst):
        """Atoms that could match ``pattern`` under ``subst`` (name-indexed)."""
        applied_name = subst.apply(predicate_name(pattern))
        if applied_name.is_ground():
            return self._by_name.get(applied_name, [])
        return self._all

    def atoms(self):
        return list(self._all)


def _solve_body(rule, subst, index, position, deferred_builtins):
    """Backtracking search for substitutions satisfying a rule body against
    the atoms in ``index``.  Yields complete substitutions."""
    while position < len(rule.body) and rule.body[position].is_builtin():
        literal = rule.body[position]
        try:
            solutions = solve_builtin(literal.atom, subst)
        except EvaluationError:
            # Not solvable yet: defer until more variables are bound.
            yield from _solve_body(rule, subst, index, position + 1,
                                   deferred_builtins + [literal])
            return
        for solution in solutions:
            yield from _solve_body(rule, solution, index, position + 1, deferred_builtins)
        return

    if position >= len(rule.body):
        # Retry any deferred builtins now that everything else is bound.
        current = [subst]
        for literal in deferred_builtins:
            next_substs = []
            for candidate in current:
                next_substs.extend(solve_builtin(literal.atom, candidate))
            current = next_substs
            if not current:
                return
        yield from current
        return

    literal = rule.body[position]
    if literal.negative:
        # Negative literals do not bind variables during grounding.
        yield from _solve_body(rule, subst, index, position + 1, deferred_builtins)
        return

    pattern = literal.atom
    for atom in index.candidates(pattern, subst):
        extended = match(subst.apply(pattern), atom, subst)
        if extended is not None:
            yield from _solve_body(rule, extended, index, position + 1, deferred_builtins)


def instantiate_rule(rule, atoms):
    """Yield all ground instances of ``rule`` whose positive body atoms are
    drawn from ``atoms`` (an iterable of ground atoms).

    Builtins are solved/evaluated; negative body atoms and the head must be
    ground once the positive body is matched, otherwise
    :class:`GroundingError` is raised (the rule is unsafe / flounders).
    """
    if rule.aggregates:
        raise GroundingError("relevance-driven grounding does not support aggregate rules")
    index = atoms if isinstance(atoms, _AtomIndex) else _build_index(atoms)
    for subst in _solve_body(rule, Substitution(), index, 0, []):
        head = subst.apply(rule.head)
        if not head.is_ground():
            raise GroundingError(
                "head %r not ground after matching positive body (unsafe rule %r)" % (head, rule)
            )
        positive = tuple(subst.apply(lit.atom) for lit in rule.body
                         if lit.positive and not lit.is_builtin())
        negative = []
        for lit in rule.body:
            if lit.negative:
                atom = subst.apply(lit.atom)
                if not atom.is_ground():
                    raise GroundingError(
                        "negative literal %r not ground after matching positive body "
                        "(rule flounders)" % (atom,)
                    )
                negative.append(atom)
        yield GroundRule(head, positive, tuple(negative))


def _build_index(atoms):
    index = _AtomIndex()
    for atom in atoms:
        index.add(atom)
    return index


def relevant_ground_program(program, extra_facts=(), max_atoms=200000, max_rounds=None,
                            max_term_depth=80):
    """Ground ``program`` by relevance: saturate the derivable atoms
    (ignoring negation) and instantiate rules only against those atoms.

    ``extra_facts`` is an iterable of additional ground atoms assumed
    derivable (used when grounding a program fragment modulo an already
    computed interpretation).  ``max_atoms`` bounds the saturation to guard
    against non-range-restricted programs whose relevant set is infinite, and
    ``max_term_depth`` catches the complementary failure mode where the
    relevant atoms keep growing in nesting depth (e.g. the unguarded generic
    transitive closure of Example 5.2, which generates ``tc(e)``,
    ``tc(tc(e))``, ... when the graph argument is left unbound).
    """
    if program.has_aggregates():
        raise GroundingError("relevance-driven grounding does not support aggregate rules")

    index = _AtomIndex()
    for atom in extra_facts:
        if not atom.is_ground():
            raise GroundingError("extra fact %r is not ground" % (atom,))
        index.add(atom)
    for rule in program.rules:
        if rule.is_fact():
            if not rule.head.is_ground():
                raise GroundingError("fact %r is not ground" % (rule.head,))
            index.add(rule.head)

    proper = [rule for rule in program.rules if not rule.is_fact()]
    changed = True
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise GroundingError("relevance saturation exceeded %d rounds" % max_rounds)
        for rule in proper:
            for ground_rule in instantiate_rule(rule, index):
                head = ground_rule.head
                if max_term_depth is not None and head.depth() > max_term_depth:
                    raise GroundingError(
                        "derived atom %r exceeds term depth %d; the program is "
                        "probably not strongly range restricted (cf. Example 5.2)"
                        % (head, max_term_depth)
                    )
                if index.add(head):
                    changed = True
                if len(index) > max_atoms:
                    raise GroundingError(
                        "relevance saturation exceeded %d atoms; "
                        "the program is probably not range restricted" % max_atoms
                    )

    ground_rules = []
    seen = set()
    extra_base = set(index.atoms())
    for rule in program.rules:
        if rule.is_fact():
            ground_rule = GroundRule(rule.head, (), ())
            if ground_rule not in seen:
                seen.add(ground_rule)
                ground_rules.append(ground_rule)
            continue
        for ground_rule in instantiate_rule(rule, index):
            if ground_rule not in seen:
                seen.add(ground_rule)
                ground_rules.append(ground_rule)
                extra_base.update(ground_rule.negative)
    return GroundProgram(ground_rules, base=extra_base)
